"""Configuration enumeration.

:class:`GreedyConfigurationEnumerator` implements the greedy algorithm of
Figure 11: start from the default ``1/N`` allocation and repeatedly shift a
share ``delta`` of some resource from the workload that suffers least to the
workload that benefits most, honouring degradation limits and weighting
costs by the benefit gain factors, until no beneficial shift remains.

Two *optimal* searches over the ``delta`` grid are provided.  The paper uses
the optimal allocation (on actual measurements) to establish the baseline
the advisor is compared against, and (on estimates) to verify that greedy
search stays within a few percent of optimal:

* :class:`ExhaustiveSearch` enumerates the cartesian product of all feasible
  grid allocations — ``O(units^(2N))`` combinations — and is kept as the
  brute-force cross-check.
* :class:`DynamicProgrammingSearch` computes the *same* optimum with an
  exact dynamic program over tenants.  The objective
  ``Σᵢ Gᵢ·Costᵢ(cpuᵢ, memᵢ)`` is separable per tenant, and tenants are
  coupled only through the sum-to-one constraint of each resource, so the
  optimum is found in ``O(N · units²_cpu · units²_mem)`` time with state =
  (cpu units assigned, memory units assigned).  Degradation-limit
  feasibility folds into per-tenant level pruning: level pairs violating a
  tenant's limit are priced at ``+inf`` and can never enter the optimum.

Both searches precompute per-tenant cost tables as dense arrays indexed by
grid level (one batched :meth:`~repro.core.cost_estimator.CostFunction.cost_many`
call per tenant), so the cost of a search is one table build plus cheap
arithmetic — not one cost-function walk per grid point.  When the cost
function is a :class:`~repro.api.cache.CachedCostFunction`, those tables
are also shared *across* searches: the fleet layer's ``greedy-cost``
placement re-solves the same machine with varying tenant sets, and each
re-solve prices only the allocations no earlier probe asked about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import OptimizationError
from .cost_estimator import CostFunction
from .problem import (
    ResourceAllocation,
    UNLIMITED_DEGRADATION,
    VirtualizationDesignProblem,
)

_EPSILON = 1e-9


@dataclass(frozen=True)
class EnumerationResult:
    """Outcome of a configuration search.

    Attributes:
        allocations: recommended allocation per tenant (problem order).
        per_workload_costs: estimated cost (seconds, unweighted) per tenant
            at the recommended allocation.
        total_cost: sum of the per-workload costs.
        weighted_cost: gain-weighted total the search minimized.
        iterations: number of greedy iterations, grid points examined, or
            dynamic-program transitions relaxed.
        cost_calls: number of cost-function invocations the search made.
    """

    allocations: Tuple[ResourceAllocation, ...]
    per_workload_costs: Tuple[float, ...]
    total_cost: float
    weighted_cost: float
    iterations: int
    cost_calls: int

    def allocation_of(self, tenant_index: int) -> ResourceAllocation:
        """Allocation recommended for one tenant."""
        return self.allocations[tenant_index]


def _evaluate_costs(
    cost_function, tenant_index: int, allocations: Sequence[ResourceAllocation]
) -> List[float]:
    """Batch-evaluate costs, falling back to a loop for cost functions that
    do not implement the :meth:`CostFunction.cost_many` batch interface."""
    batch = getattr(cost_function, "cost_many", None)
    if callable(batch):
        return list(batch(tenant_index, allocations))
    return [cost_function.cost(tenant_index, allocation) for allocation in allocations]


# ----------------------------------------------------------------------
# Shared grid helpers (exhaustive and DP search)
# ----------------------------------------------------------------------
def _grid_bounds(delta: float, min_share: float, n_workloads: int) -> Tuple[int, int, int]:
    """``(units, min_units, max_units)`` of the per-tenant level grid.

    ``min_units`` rounds the minimum share *up* to the grid (never below
    one unit for a positive ``min_share``): a level-0 tenant would hold a
    zero share, which can never execute work — with ``min_share=0.05`` on
    a ``delta=0.1`` grid the effective minimum is one 0.1-unit, not zero.
    """
    units = round(1.0 / delta)
    if min_share > 0.0:
        min_units = max(1, math.ceil(min_share / delta - _EPSILON))
    else:
        min_units = 0
    if min_units * n_workloads > units:
        raise OptimizationError("min_share is too large for the number of workloads")
    max_units = units - min_units * (n_workloads - 1)
    return units, min_units, max_units


def effective_min_share(delta: float, min_share: float) -> float:
    """The smallest share a grid search can actually assign one tenant.

    The grid quantizes ``min_share`` upward (see :func:`_grid_bounds`), so
    the effective minimum — which bounds how many tenants can share one
    machine — may exceed the nominal ``min_share``.  The fleet layer uses
    this to avoid over-packing a machine its enumerator cannot divide.
    """
    units, min_units, _ = _grid_bounds(delta, min_share, 1)
    return min_units / units if min_units else 0.0


def _unit_compositions(units: int, min_units: int, n_workloads: int) -> List[Tuple[int, ...]]:
    """All ways of splitting ``units`` grid units among ``n_workloads``."""
    combos: List[Tuple[int, ...]] = []

    def compose(remaining: int, parts_left: int, prefix: List[int]) -> None:
        if parts_left == 1:
            if remaining >= min_units:
                combos.append(tuple(prefix + [remaining]))
            return
        for value in range(min_units, remaining - min_units * (parts_left - 1) + 1):
            compose(remaining - value, parts_left - 1, prefix + [value])

    compose(units, n_workloads, [])
    return combos


@dataclass
class _GridCostTables:
    """Dense per-tenant cost tables over the grid's (cpu, memory) levels.

    ``raw[i][ci][mi]`` is tenant ``i``'s unweighted cost at cpu level index
    ``ci`` and memory level index ``mi``; ``weighted[i]`` is the
    gain-weighted table with degradation-violating level pairs priced at
    ``+inf`` (per-tenant feasibility pruning).
    """

    units: int
    cpu_level_units: List[int]
    mem_level_units: List[int]
    cpu_shares: List[float]
    mem_shares: List[float]
    mem_units_total: int
    raw: List[List[List[float]]]
    weighted: List[np.ndarray]

    def allocation(self, cpu_index: int, mem_index: int) -> ResourceAllocation:
        """The allocation at one (cpu level, memory level) table cell."""
        return ResourceAllocation(
            cpu_share=self.cpu_shares[cpu_index],
            memory_fraction=self.mem_shares[mem_index],
        )


def _bounds_from_full_costs(
    problem: VirtualizationDesignProblem, full_costs: Dict[int, float]
) -> Dict[int, float]:
    """Max admissible raw cost per limited tenant, from full-machine costs.

    The single source of the feasibility rule shared by greedy, exhaustive,
    and DP search: ``cost <= limit * full_cost + epsilon``, with tenants
    whose full-machine cost is non-positive treated as unconstrained.
    """
    return {
        index: problem.tenant(index).degradation_limit * base + _EPSILON
        for index, base in full_costs.items()
        if base > 0
    }


def _degradation_bounds(
    problem: VirtualizationDesignProblem,
    cost_function,
    enforce: bool,
) -> Dict[int, float]:
    """Max admissible raw cost per degradation-limited tenant."""
    if not enforce:
        return {}
    full = problem.full_allocation()
    full_costs = {
        index: cost_function.cost(index, full)
        for index in range(problem.n_workloads)
        if problem.tenant(index).degradation_limit != UNLIMITED_DEGRADATION
    }
    return _bounds_from_full_costs(problem, full_costs)


def _build_cost_tables(
    problem: VirtualizationDesignProblem,
    cost_function,
    delta: float,
    min_share: float,
    enforce_degradation_limits: bool,
) -> _GridCostTables:
    """Build the dense per-tenant cost tables for a grid search.

    One batched ``cost_many`` call per tenant computes the whole table;
    the gain factors and degradation-limit pruning are applied on top.
    """
    n = problem.n_workloads
    units, min_units, max_units = _grid_bounds(delta, min_share, n)
    cpu_level_units = list(range(min_units, max_units + 1))
    cpu_shares = [level * delta for level in cpu_level_units]
    if problem.controls_memory:
        mem_level_units = list(cpu_level_units)
        mem_shares = [level * delta for level in mem_level_units]
        mem_units_total = units
    else:
        mem_level_units = [0]
        mem_shares = [problem.fixed_memory_fraction]
        mem_units_total = 0

    bounds = _degradation_bounds(problem, cost_function, enforce_degradation_limits)

    raw: List[List[List[float]]] = []
    weighted: List[np.ndarray] = []
    for index in range(n):
        allocations = [
            ResourceAllocation(cpu_share=cpu, memory_fraction=memory)
            for cpu in cpu_shares
            for memory in mem_shares
        ]
        values = _evaluate_costs(cost_function, index, allocations)
        table = np.asarray(values, dtype=float).reshape(
            len(cpu_shares), len(mem_shares)
        )
        raw.append(table.tolist())
        gain_weighted = table * problem.tenant(index).gain_factor
        bound = bounds.get(index)
        if bound is not None:
            gain_weighted = np.where(table > bound, np.inf, gain_weighted)
        weighted.append(gain_weighted)
    return _GridCostTables(
        units=units,
        cpu_level_units=cpu_level_units,
        mem_level_units=mem_level_units,
        cpu_shares=cpu_shares,
        mem_shares=mem_shares,
        mem_units_total=mem_units_total,
        raw=raw,
        weighted=weighted,
    )


def _result_from_tables(
    tables: _GridCostTables,
    level_indices: Sequence[Tuple[int, int]],
    weighted_cost: float,
    iterations: int,
    cost_calls: int,
) -> EnumerationResult:
    """Assemble an :class:`EnumerationResult` from chosen table cells."""
    allocations = tuple(
        tables.allocation(cpu_index, mem_index)
        for cpu_index, mem_index in level_indices
    )
    per_costs = tuple(
        tables.raw[i][cpu_index][mem_index]
        for i, (cpu_index, mem_index) in enumerate(level_indices)
    )
    return EnumerationResult(
        allocations=allocations,
        per_workload_costs=per_costs,
        total_cost=sum(per_costs),
        weighted_cost=weighted_cost,
        iterations=iterations,
        cost_calls=cost_calls,
    )


class GreedyConfigurationEnumerator:
    """The greedy configuration enumeration algorithm of Figure 11."""

    def __init__(
        self,
        delta: float = 0.05,
        min_share: float = 0.05,
        max_iterations: int = 500,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise OptimizationError(f"delta must be in (0, 1), got {delta}")
        if not 0.0 <= min_share < 1.0:
            raise OptimizationError(f"min_share must be in [0, 1), got {min_share}")
        if max_iterations <= 0:
            raise OptimizationError("max_iterations must be positive")
        self.delta = delta
        self.min_share = min_share
        self.max_iterations = max_iterations

    def enumerate(
        self,
        problem: VirtualizationDesignProblem,
        cost_function: CostFunction,
    ) -> EnumerationResult:
        """Run the greedy search and return the recommended allocations."""
        n = problem.n_workloads
        calls_before = cost_function.call_count
        allocations: List[ResourceAllocation] = list(problem.default_allocation())
        full_costs = {
            i: cost_function.cost(i, problem.full_allocation())
            for i in range(n)
            if problem.tenant(i).degradation_limit != UNLIMITED_DEGRADATION
        }
        # Satisfy the degradation limits first: the default 1/N allocation
        # may already violate a tight limit, in which case resources are
        # shifted toward the constrained workloads even if doing so
        # increases the total cost (the QoS constraint takes precedence,
        # as in the paper's Figure 19 experiment).
        if full_costs:
            self._repair_degradation(problem, cost_function, full_costs, allocations)
        gains = [problem.tenant(i).gain_factor for i in range(n)]
        bounds = _bounds_from_full_costs(problem, full_costs)
        weighted = [
            gains[i] * cost_function.cost(i, allocations[i]) for i in range(n)
        ]

        iterations = 0
        while iterations < self.max_iterations:
            iterations += 1
            best_move: Optional[
                Tuple[int, int, ResourceAllocation, ResourceAllocation, float, float]
            ] = None
            max_diff = 0.0
            for resource in problem.resources:
                max_gain = 0.0
                min_loss = math.inf
                i_gain: Optional[int] = None
                i_lose: Optional[int] = None
                gain_alloc: Optional[ResourceAllocation] = None
                lose_alloc: Optional[ResourceAllocation] = None
                gain_cost = 0.0
                lose_cost = 0.0
                for i in range(n):
                    share = allocations[i].get(resource)
                    increased: Optional[ResourceAllocation] = None
                    reduced: Optional[ResourceAllocation] = None
                    # Who benefits most from an increase?  A share within
                    # delta of the full machine absorbs a clamped step; the
                    # probed allocation object itself is what a winning move
                    # applies, so probe and apply can never diverge (and the
                    # cached weighted[i] stays consistent).
                    if share + self.delta <= 1.0 + _EPSILON:
                        increased = allocations[i].with_resource(
                            resource, min(1.0, share + self.delta)
                        )
                    # Who suffers least from a reduction?
                    if share - self.delta >= self.min_share - _EPSILON:
                        reduced = allocations[i].shifted(resource, -self.delta)
                    probes = [a for a in (increased, reduced) if a is not None]
                    if not probes:
                        continue
                    raw = _evaluate_costs(cost_function, i, probes)
                    position = 0
                    if increased is not None:
                        cost_up = gains[i] * raw[position]
                        position += 1
                        gain = weighted[i] - cost_up
                        if gain > max_gain:
                            max_gain, i_gain = gain, i
                            gain_alloc, gain_cost = increased, cost_up
                    if reduced is not None:
                        raw_down = raw[position]
                        cost_down = gains[i] * raw_down
                        loss = cost_down - weighted[i]
                        bound = bounds.get(i)
                        if loss < min_loss and (bound is None or raw_down <= bound):
                            min_loss, i_lose = loss, i
                            lose_alloc, lose_cost = reduced, cost_down
                if (
                    i_gain is not None
                    and i_lose is not None
                    and i_gain != i_lose
                    and max_gain - min_loss > max_diff
                ):
                    max_diff = max_gain - min_loss
                    best_move = (i_gain, i_lose, gain_alloc, lose_alloc,
                                 gain_cost, lose_cost)

            if best_move is None or max_diff <= 0.0:
                break
            i_gain, i_lose, gain_alloc, lose_alloc, gain_cost, lose_cost = best_move
            allocations[i_gain] = gain_alloc
            allocations[i_lose] = lose_alloc
            weighted[i_gain] = gain_cost
            weighted[i_lose] = lose_cost

        per_costs = tuple(
            cost_function.cost(i, allocations[i]) for i in range(n)
        )
        return EnumerationResult(
            allocations=tuple(allocations),
            per_workload_costs=per_costs,
            total_cost=sum(per_costs),
            weighted_cost=sum(
                problem.tenant(i).gain_factor * per_costs[i] for i in range(n)
            ),
            iterations=iterations,
            cost_calls=cost_function.call_count - calls_before,
        )

    def _within_degradation_limit(
        self,
        problem: VirtualizationDesignProblem,
        cost_function: CostFunction,
        full_costs: dict,
        tenant_index: int,
        allocation: ResourceAllocation,
    ) -> bool:
        limit = problem.tenant(tenant_index).degradation_limit
        if limit == UNLIMITED_DEGRADATION:
            return True
        base = full_costs[tenant_index]
        if base <= 0:
            return True
        cost = cost_function.cost(tenant_index, allocation)
        return cost <= limit * base + _EPSILON

    def _repair_degradation(
        self,
        problem: VirtualizationDesignProblem,
        cost_function: CostFunction,
        full_costs: dict,
        allocations: List[ResourceAllocation],
    ) -> None:
        """Shift resources toward workloads whose degradation limit is violated.

        Each repair step moves ``delta`` of one resource from the donor that
        suffers the smallest (gain-weighted) cost increase — and whose own
        limit remains satisfied — to a violating workload.  The loop stops
        when every limit is met or no legal donor remains (the limit is then
        reported as unmet, as in the paper's L = 1.5 case).
        """
        n = problem.n_workloads
        for _ in range(self.max_iterations):
            violator = None
            for index in range(n):
                if index in full_costs and not self._within_degradation_limit(
                    problem, cost_function, full_costs, index, allocations[index]
                ):
                    violator = index
                    break
            if violator is None:
                return
            best_move = None
            best_loss = math.inf
            for resource in problem.resources:
                if allocations[violator].get(resource) + self.delta > 1.0 + _EPSILON:
                    continue
                for donor in range(n):
                    if donor == violator:
                        continue
                    share = allocations[donor].get(resource)
                    if share - self.delta < self.min_share - _EPSILON:
                        continue
                    reduced = allocations[donor].shifted(resource, -self.delta)
                    if not self._within_degradation_limit(
                        problem, cost_function, full_costs, donor, reduced
                    ):
                        continue
                    loss = (
                        cost_function.weighted_cost(donor, reduced)
                        - cost_function.weighted_cost(donor, allocations[donor])
                    )
                    if loss < best_loss:
                        best_loss = loss
                        best_move = (resource, donor)
            if best_move is None:
                return
            resource, donor = best_move
            allocations[violator] = allocations[violator].shifted(resource, self.delta)
            allocations[donor] = allocations[donor].shifted(resource, -self.delta)


class ExhaustiveSearch:
    """Brute-force grid enumeration of every feasible allocation.

    Kept as the cross-check baseline for :class:`DynamicProgrammingSearch`,
    which finds the same optimum without walking the ``O(units^(2N))``
    cartesian product.
    """

    def __init__(
        self,
        delta: float = 0.05,
        min_share: float = 0.05,
        max_combinations: int = 2_000_000,
        enforce_degradation_limits: bool = True,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise OptimizationError(f"delta must be in (0, 1), got {delta}")
        self.delta = delta
        self.min_share = min_share
        self.max_combinations = max_combinations
        self.enforce_degradation_limits = enforce_degradation_limits

    @property
    def effective_min_share(self) -> float:
        """Smallest per-tenant share on this grid (``min_share`` rounded up)."""
        return effective_min_share(self.delta, self.min_share)

    # ------------------------------------------------------------------
    # Grid enumeration helpers
    # ------------------------------------------------------------------
    def _share_grid(self, n_workloads: int) -> List[Tuple[float, ...]]:
        """All ways of splitting one resource among ``n_workloads`` tenants."""
        units, min_units, _ = _grid_bounds(self.delta, self.min_share, n_workloads)
        return [
            tuple(level * self.delta for level in combo)
            for combo in _unit_compositions(units, min_units, n_workloads)
        ]

    def search(
        self,
        problem: VirtualizationDesignProblem,
        cost_function: CostFunction,
    ) -> EnumerationResult:
        """Evaluate every grid allocation and return the cheapest feasible one.

        A tenant's cost depends only on its own ``(cpu, memory)`` level, so
        the per-tenant costs over the distinct grid levels are batch-computed
        once up front into dense level-indexed tables; the combination loop
        then reduces to table lookups and float arithmetic instead of
        re-walking the cost-function machinery for every one of the
        (potentially millions of) grid points.
        """
        n = problem.n_workloads
        calls_before = cost_function.call_count
        units, min_units, _ = _grid_bounds(self.delta, self.min_share, n)
        cpu_combos = _unit_compositions(units, min_units, n)
        if problem.controls_memory:
            mem_combos: List[Optional[Tuple[int, ...]]] = list(cpu_combos)
        else:
            mem_combos = [None]
        total_combinations = len(cpu_combos) * len(mem_combos)
        if total_combinations > self.max_combinations:
            raise OptimizationError(
                f"exhaustive search would evaluate {total_combinations} allocations; "
                f"raise max_combinations or coarsen delta"
            )

        tables = _build_cost_tables(
            problem, cost_function, self.delta, self.min_share,
            self.enforce_degradation_limits,
        )
        # Infeasible level pairs are +inf in the weighted tables, so a combo
        # violating any tenant's degradation limit can never become the best.
        weighted_tables = [table.tolist() for table in tables.weighted]

        best_combo: Optional[Tuple[Tuple[int, ...], Optional[Tuple[int, ...]]]] = None
        best_weighted = math.inf
        examined = 0
        offset = min_units
        indices = range(n)
        for cpu_combo in cpu_combos:
            for mem_combo in mem_combos:
                examined += 1
                weighted = 0.0
                if mem_combo is None:
                    for i in indices:
                        weighted += weighted_tables[i][cpu_combo[i] - offset][0]
                else:
                    for i in indices:
                        weighted += weighted_tables[i][cpu_combo[i] - offset][
                            mem_combo[i] - offset
                        ]
                if weighted < best_weighted:
                    best_weighted = weighted
                    best_combo = (cpu_combo, mem_combo)

        if best_combo is None:
            raise OptimizationError(
                "exhaustive search found no allocation satisfying the degradation limits"
            )
        cpu_combo, mem_combo = best_combo
        level_indices = [
            (
                cpu_combo[i] - offset,
                (mem_combo[i] - offset) if mem_combo is not None else 0,
            )
            for i in indices
        ]
        return _result_from_tables(
            tables,
            level_indices,
            weighted_cost=best_weighted,
            iterations=examined,
            cost_calls=cost_function.call_count - calls_before,
        )

    def enumerate(
        self,
        problem: VirtualizationDesignProblem,
        cost_function: CostFunction,
    ) -> EnumerationResult:
        """Alias for :meth:`search` so exhaustive and greedy enumeration share
        the :class:`repro.api.strategies.EnumerationStrategy` interface."""
        return self.search(problem, cost_function)


class DynamicProgrammingSearch:
    """Exact dynamic program over tenants: the optimum without the blow-up.

    Finds the same optimal grid allocation as :class:`ExhaustiveSearch` —
    the objective ``Σᵢ Gᵢ·Costᵢ`` is separable per tenant with one
    sum-to-one constraint per resource — by relaxing tenants one at a time
    over the state (cpu units assigned, memory units assigned).  Runtime is
    ``O(N · units²_cpu · units²_mem)`` instead of ``O(units^(2N))``, which
    opens problems the brute force cannot touch: 6–10 tenants at
    ``delta = 0.05`` with both resources controlled, or ``delta = 0.01``
    CPU-only grids, all in seconds.

    Degradation limits are enforced by per-tenant level pruning (violating
    level pairs cost ``+inf``); if no assignment satisfies every limit the
    search raises :class:`~repro.exceptions.OptimizationError`, exactly as
    the brute force does.
    """

    def __init__(
        self,
        delta: float = 0.05,
        min_share: float = 0.05,
        enforce_degradation_limits: bool = True,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise OptimizationError(f"delta must be in (0, 1), got {delta}")
        if not 0.0 <= min_share < 1.0:
            raise OptimizationError(f"min_share must be in [0, 1), got {min_share}")
        self.delta = delta
        self.min_share = min_share
        self.enforce_degradation_limits = enforce_degradation_limits

    @property
    def effective_min_share(self) -> float:
        """Smallest per-tenant share on this grid (``min_share`` rounded up)."""
        return effective_min_share(self.delta, self.min_share)

    def search(
        self,
        problem: VirtualizationDesignProblem,
        cost_function: CostFunction,
    ) -> EnumerationResult:
        """Compute the optimal grid allocation by dynamic programming."""
        n = problem.n_workloads
        calls_before = cost_function.call_count
        tables = _build_cost_tables(
            problem, cost_function, self.delta, self.min_share,
            self.enforce_degradation_limits,
        )
        units = tables.units
        mem_total = tables.mem_units_total
        cpu_consumption = tables.cpu_level_units
        mem_consumption = tables.mem_level_units

        # dp[cu, mu] = cheapest gain-weighted cost of the tenants relaxed so
        # far, given that they consume exactly cu cpu and mu memory units.
        dp = np.full((units + 1, mem_total + 1), np.inf)
        dp[0, 0] = 0.0
        choices: List[Tuple[np.ndarray, np.ndarray]] = []
        examined = 0
        for index in range(n):
            weighted = tables.weighted[index]
            ndp = np.full_like(dp, np.inf)
            chosen_cpu = np.zeros(dp.shape, dtype=np.int32)
            chosen_mem = np.zeros(dp.shape, dtype=np.int32)
            for ci, cpu_units in enumerate(cpu_consumption):
                for mi, mem_units in enumerate(mem_consumption):
                    level_cost = weighted[ci, mi]
                    if not np.isfinite(level_cost):
                        continue  # pruned: violates the tenant's limit
                    source = dp[: units + 1 - cpu_units, : mem_total + 1 - mem_units]
                    target = ndp[cpu_units:, mem_units:]
                    candidate = source + level_cost
                    better = candidate < target
                    if better.any():
                        target[better] = candidate[better]
                        chosen_cpu[cpu_units:, mem_units:][better] = ci
                        chosen_mem[cpu_units:, mem_units:][better] = mi
                    examined += source.size
            dp = ndp
            choices.append((chosen_cpu, chosen_mem))

        best = dp[units, mem_total]
        if not np.isfinite(best):
            raise OptimizationError(
                "dynamic-programming search found no allocation satisfying "
                "the degradation limits"
            )

        # Backtrack the argmin path from the full-machine state.
        cpu_left, mem_left = units, mem_total
        level_indices: List[Optional[Tuple[int, int]]] = [None] * n
        for index in range(n - 1, -1, -1):
            chosen_cpu, chosen_mem = choices[index]
            ci = int(chosen_cpu[cpu_left, mem_left])
            mi = int(chosen_mem[cpu_left, mem_left])
            level_indices[index] = (ci, mi)
            cpu_left -= cpu_consumption[ci]
            mem_left -= mem_consumption[mi]

        return _result_from_tables(
            tables,
            level_indices,
            weighted_cost=float(best),
            iterations=examined,
            cost_calls=cost_function.call_count - calls_before,
        )

    def enumerate(
        self,
        problem: VirtualizationDesignProblem,
        cost_function: CostFunction,
    ) -> EnumerationResult:
        """Alias for :meth:`search` (the shared enumeration interface)."""
        return self.search(problem, cost_function)
