"""Structured, serializable fleet recommendation reports.

A fleet recommendation is a two-level answer: the placement (which machine
hosts which tenants) and, per machine, the full per-machine
:class:`~repro.api.report.RecommendationReport` the advisor produced when
dividing that machine.  :class:`FleetReport` packages both, together with
fleet-level cost statistics, and round-trips through JSON
(``to_dict`` / ``to_json`` / ``from_dict`` / ``from_json``) so a fleet
controller can ship recommendations to the machines that must apply them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..api.report import CostCallStats, RecommendationReport
from .problem import Machine


@dataclass(frozen=True)
class MachineReport:
    """The advisor's answer for one machine of the fleet.

    Attributes:
        machine: the host this report configures.
        tenants: names of the tenants placed on the machine (the order of
            the embedded report's tenant entries); empty for idle machines.
        report: the per-machine recommendation produced by
            :class:`repro.api.Advisor`, or ``None`` for an idle machine.
        weighted_cost: the machine's gain-weighted objective
            ``Σᵢ Gᵢ·Costᵢ`` under the recommendation (0 for idle machines).
    """

    machine: Machine
    tenants: Tuple[str, ...]
    report: Optional[RecommendationReport]
    weighted_cost: float

    @property
    def is_idle(self) -> bool:
        """Whether no tenant was placed on this machine."""
        return not self.tenants

    def to_dict(self) -> Dict[str, Any]:
        """The machine report as a JSON-safe dictionary."""
        return {
            "machine": self.machine.to_dict(),
            "tenants": list(self.tenants),
            "weighted_cost": self.weighted_cost,
            "report": None if self.report is None else self.report.to_dict(),
        }

    def canonical_dict(self) -> Dict[str, Any]:
        """The machine's answer with run artifacts stripped (see FleetReport)."""
        return {
            "machine": self.machine.to_dict(),
            "tenants": list(self.tenants),
            "weighted_cost": self.weighted_cost,
            "report": None if self.report is None else self.report.canonical_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MachineReport":
        """Rebuild a machine report from its dictionary form."""
        report = data.get("report")
        return cls(
            machine=Machine.from_dict(data["machine"]),
            tenants=tuple(data.get("tenants", ())),
            report=None if report is None else RecommendationReport.from_dict(report),
            weighted_cost=data["weighted_cost"],
        )


@dataclass(frozen=True)
class FleetReport:
    """The fleet advisor's full answer to one fleet problem.

    Attributes:
        fleet_name: name of the solved :class:`~repro.fleet.problem.FleetProblem`.
        strategy: placement strategy that chose the assignment.
        placement: tenant-name → machine-name assignment.
        machines: one :class:`MachineReport` per machine (machine order),
            idle machines included.
        total_cost: sum of the per-tenant estimated costs (seconds).
        total_weighted_cost: the fleet objective ``Σᵢ Gᵢ·Costᵢ`` summed
            over all machines — what ``"greedy-cost"`` placement minimizes.
        cost_stats: aggregated cost-call accounting across every
            per-machine solve of the run (placement probes included).
            Under a concurrent backend, overlapping solves may attribute
            shared-cache traffic to several machines at once, so treat
            these numbers as indicative there; the answer itself is
            backend-invariant (see :meth:`canonical_dict`).
        wall_time_seconds: wall-clock time of the whole recommendation.
        backend: the solver-execution backend that produced the report
            (``"serial"`` / ``"thread"`` / ``"process"``, or a custom
            backend's name) — provenance, not part of the answer.
        jobs: the backend's worker count.
        placement_provenance: the placement strategy's own account of how
            it found the assignment, when it keeps one — ``"bnb-fleet"``
            reports node counts, whether the optimum was *proven* or a
            budget degraded the answer to the best incumbent, and which
            budget tripped (see
            :class:`repro.fleet.bnb.BnbSearchStats.to_dict`).  ``None``
            for strategies without search accounting.  Provenance, not
            part of the answer — excluded from :meth:`canonical_dict`
            (it carries wall-clock fields).
    """

    fleet_name: str
    strategy: str
    placement: Dict[str, str]
    machines: Tuple[MachineReport, ...]
    total_cost: float
    total_weighted_cost: float
    cost_stats: CostCallStats
    wall_time_seconds: float
    backend: str = "serial"
    jobs: int = 1
    placement_provenance: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def machines_used(self) -> int:
        """Number of machines hosting at least one tenant."""
        return sum(1 for machine in self.machines if not machine.is_idle)

    def machine(self, name: str) -> MachineReport:
        """The report for the named machine."""
        for machine in self.machines:
            if machine.machine.name == name:
                return machine
        raise KeyError(name)

    def machine_of(self, tenant_name: str) -> str:
        """Name of the machine hosting the named tenant."""
        return self.placement[tenant_name]

    def tenant_allocation(self, tenant_name: str):
        """The per-machine allocation recommended for one tenant."""
        machine = self.machine(self.placement[tenant_name])
        if machine.report is None:  # pragma: no cover - placement guarantees
            raise KeyError(tenant_name)
        for tenant, allocation in zip(
            machine.report.tenants, machine.report.allocations
        ):
            if tenant.name == tenant_name:
                return allocation
        raise KeyError(tenant_name)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The fleet report as a JSON-safe dictionary."""
        return {
            "fleet_name": self.fleet_name,
            "strategy": self.strategy,
            "placement": dict(self.placement),
            "machines": [machine.to_dict() for machine in self.machines],
            "total_cost": self.total_cost,
            "total_weighted_cost": self.total_weighted_cost,
            "cost_stats": self.cost_stats.to_dict(),
            "wall_time_seconds": self.wall_time_seconds,
            "backend": self.backend,
            "jobs": self.jobs,
            "placement_provenance": (
                None
                if self.placement_provenance is None
                else dict(self.placement_provenance)
            ),
        }

    def canonical_dict(self) -> Dict[str, Any]:
        """The fleet answer, stripped of run artifacts and provenance.

        The determinism contract of the parallel solver-execution
        subsystem: for any backend,
        ``recommend(problem, backend=b).canonical_dict()`` equals the
        serial backend's, bit for bit.  Wall-clock time, cache-traffic
        statistics, and the backend/jobs provenance are dropped; the
        placement, every machine's division, and every cost are kept.
        """
        return {
            "fleet_name": self.fleet_name,
            "strategy": self.strategy,
            "placement": dict(self.placement),
            "machines": [machine.canonical_dict() for machine in self.machines],
            "total_cost": self.total_cost,
            "total_weighted_cost": self.total_weighted_cost,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The fleet report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetReport":
        """Rebuild a fleet report from its dictionary form."""
        return cls(
            fleet_name=data["fleet_name"],
            strategy=data["strategy"],
            placement=dict(data["placement"]),
            machines=tuple(
                MachineReport.from_dict(machine) for machine in data["machines"]
            ),
            total_cost=data["total_cost"],
            total_weighted_cost=data["total_weighted_cost"],
            cost_stats=CostCallStats.from_dict(data["cost_stats"]),
            wall_time_seconds=data["wall_time_seconds"],
            backend=data.get("backend", "serial"),
            jobs=data.get("jobs", 1),
            placement_provenance=data.get("placement_provenance"),
        )

    @classmethod
    def from_json(cls, document: Union[str, bytes]) -> "FleetReport":
        """Rebuild a fleet report from a JSON document."""
        return cls.from_dict(json.loads(document))

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def summary_lines(self) -> List[str]:
        """Human-readable per-machine summary (used by the examples)."""
        lines = [
            f"fleet {self.fleet_name!r}: {len(self.placement)} tenants on "
            f"{self.machines_used}/{len(self.machines)} machines "
            f"({self.strategy}), weighted cost "
            f"{self.total_weighted_cost:.1f}"
        ]
        for machine in self.machines:
            if machine.is_idle:
                lines.append(f"  {machine.machine.name}: idle")
                continue
            parts = []
            assert machine.report is not None
            for tenant in machine.report.tenants:
                parts.append(
                    f"{tenant.name} cpu={tenant.cpu_share:.0%}"
                    f" mem={tenant.memory_fraction:.0%}"
                )
            lines.append(
                f"  {machine.machine.name} "
                f"(weighted cost {machine.weighted_cost:.1f}): "
                + "; ".join(parts)
            )
        return lines
