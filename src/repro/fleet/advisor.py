"""The fleet advisor: placement on top of the per-machine advisor.

:class:`FleetAdvisor` answers the fleet-scale consolidation question —
*which machine should each tenant live on, and how should every machine
then be divided?* — by composing two existing pieces:

* a pluggable placement strategy (:mod:`repro.fleet.strategies`) chooses
  the tenant → machine assignment, and
* the unchanged :class:`repro.api.Advisor` divides each machine's CPU and
  memory among the tenants placed there (the paper's per-machine problem).

The advisor keeps one calibrated :class:`~repro.api.ProblemBuilder` per
*distinct hardware shape* (two fleet machines with equal capacity share one
calibration, exactly as one physical testbed serves many identical racks),
memoizes the per-machine design problems it materializes, and runs every
per-machine solve through the inner advisor's shared
:class:`~repro.api.cache.CostCache`.  Consequences:

* the ``"greedy-cost"`` strategy's placement probes price each candidate
  co-location from the same batched cost tables the final solve uses, and
* a repeated :meth:`FleetAdvisor.recommend` over an unchanged problem
  performs **zero** new cost-estimator evaluations — the whole fleet
  answer comes out of the cache.

    from repro.fleet import FleetAdvisor, FleetProblem

    fleet = FleetProblem.from_json(document)
    report = FleetAdvisor().recommend(fleet)      # -> FleetReport
    report.to_json()
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..api.advisor import Advisor
from ..api.builder import ProblemBuilder
from ..api.report import CostCallStats, RecommendationReport
from ..calibration import CalibrationSettings
from ..core.problem import ConsolidatedWorkload, VirtualizationDesignProblem
from ..exceptions import ConfigurationError, OptimizationError, PlacementError
from ..parallel import worker as _worker
from ..parallel.backends import (
    BACKENDS,
    BackendSpec,
    SolveTask,
    SolverBackend,
    resolve_backend,
)
from ..telemetry.instruments import PLACEMENT_PROBES, PROBE_LATENCY
from ..telemetry.trace import get_tracer
from .problem import FleetProblem, Machine, Placement
from .report import FleetReport, MachineReport
from .solve_memo import DEFAULT_SOLVE_MEMO_SIZE, Infeasible, SolveMemo
from .strategies import PLACEMENTS, PlacementStrategy, greedy_assign

#: Hardware shape plus calibration overrides: the unit of calibration reuse.
_BuilderKey = Tuple[Tuple[float, float, int], Tuple[Tuple[str, Any], ...]]

PlacementSpec = Union[str, PlacementStrategy]

#: Bounds on the fleet advisor's memoized objects.  Eviction never affects
#: correctness — a re-materialized workload merely re-prices allocations the
#: shared cost cache no longer recognizes — and the bounds comfortably cover
#: a greedy-cost run (~tenants × machines problems per fleet).
_TENANT_MEMO_SIZE = 4096
_PROBLEM_MEMO_SIZE = 1024

#: The accounting a memo-served solve contributes: no evaluations, no
#: cache traffic — one whole enumerator search skipped.
_MEMO_HIT_STATS = CostCallStats(
    evaluations=0, cache_hits=0, cache_misses=0, placement_solve_hits=1
)


def _placement_name(spec: PlacementSpec) -> str:
    """Human-readable provenance name for a placement spec."""
    if isinstance(spec, str):
        return spec
    return getattr(spec, "name", type(spec).__name__)


def _placement_provenance(strategy: Any) -> Optional[Dict[str, Any]]:
    """The strategy's search accounting for this run, if it keeps one.

    Strategies with a ``last_search`` attribute exposing ``to_dict()``
    (``"bnb-fleet"``'s :class:`~repro.fleet.bnb.BnbSearchStats`) have it
    captured immediately after ``place()`` returns, before the strategy
    can run again, and surfaced as the report's ``placement_provenance``.
    """
    last_search = getattr(strategy, "last_search", None)
    to_dict = getattr(last_search, "to_dict", None)
    if to_dict is None:
        return None
    return to_dict()


class _FleetSolver:
    """Prices candidate co-locations for one fleet problem.

    This is the :class:`~repro.fleet.strategies.PlacementSolver` handed to
    placement strategies.  It materializes per-machine design problems
    (memoized by machine hardware and tenant set, so value-equal requests
    return the *same* problem object and hit the inner advisor's caches),
    solves them with the shared :class:`~repro.api.Advisor`, and keeps the
    aggregated cost-call statistics of everything the run asked for.

    Independent solves fan out through the run's
    :class:`~repro.parallel.backends.SolverBackend` (:meth:`machine_costs`
    for placement probes, :meth:`solve_many` for committed machines);
    results are always reassembled in submission order, so every backend
    returns the serial answer.
    """

    def __init__(
        self,
        fleet_advisor: "FleetAdvisor",
        problem: FleetProblem,
        backend: Optional[SolverBackend] = None,
    ) -> None:
        self.fleet_advisor = fleet_advisor
        self.problem = problem
        self.backend = backend if backend is not None else resolve_backend(None)
        self.stats = CostCallStats(evaluations=0, cache_hits=0, cache_misses=0)
        self._stats_lock = threading.Lock()
        #: Shared pieces of the process-backend task payloads, built on
        #: first use (they require a fully *portable* advisor config).
        self._portable_base: Optional[Dict[str, Any]] = None
        # The bound must come from the enumerator that will actually divide
        # the machine: an instance-supplied enumerator may use a coarser
        # min_share than the advisor-level knob, and grid searches quantize
        # the minimum share upward (``effective_min_share``), capping a
        # machine below the nominal ``1 / min_share``.
        advisor = fleet_advisor.advisor
        enumerator = advisor.enumerator
        min_share = getattr(
            enumerator,
            "effective_min_share",
            getattr(enumerator, "min_share", getattr(advisor, "min_share", 0.05)),
        )
        #: A machine cannot host more tenants than fit the enumerator's
        #: minimum share (every VM must receive at least ``min_share``).
        self.max_tenants: Optional[int] = (
            int(math.floor(1.0 / min_share + 1e-9)) if min_share > 0 else None
        )

    # ------------------------------------------------------------------
    # PlacementSolver surface
    # ------------------------------------------------------------------
    def fits(self, machine_index: int, tenant_indices: Tuple[int, ...]) -> bool:
        """Capacity check, including the minimum-share tenant bound."""
        return self.problem.fits(machine_index, tenant_indices, self.max_tenants)

    def machine_cost(
        self, machine_index: int, tenant_indices: Tuple[int, ...]
    ) -> float:
        """Gain-weighted cost of a machine hosting ``tenant_indices``.

        A co-location no allocation can make feasible (e.g. the combined
        degradation limits are unsatisfiable on this machine) prices as
        ``+inf`` so cost-aware strategies simply avoid it; only a machine
        the placement actually commits to may raise.
        """
        started = time.perf_counter()
        try:
            report, weighted = self.solve(machine_index, tenant_indices)
        except OptimizationError:
            return math.inf
        finally:
            PROBE_LATENCY.observe(time.perf_counter() - started)
            PLACEMENT_PROBES.inc()
        return weighted

    def machine_costs(
        self, candidates: Sequence[Tuple[int, Tuple[int, ...]]]
    ) -> List[float]:
        """Price several candidate co-locations, fanned out on the backend.

        ``candidates`` is a sequence of ``(machine_index, tenant_indices)``
        pairs; the returned costs align with it.  On the serial backend
        this is exactly a loop of :meth:`machine_cost` calls, so answers
        (and tie-breaks downstream) are identical across backends.
        """
        tasks = [
            self._task(machine_index, tenant_indices, probe=True)
            for machine_index, tenant_indices in candidates
        ]
        return self.backend.run(tasks)

    def submit_probe(self, machine_index: int, tenant_indices: Tuple[int, ...]):
        """Enqueue one probe now; collect its cost from the handle later.

        The primitive behind speculative pipelined probing (see
        :func:`~repro.fleet.strategies.greedy_assign`): probes for future
        decision rounds keep the backend's pool saturated while the caller
        blocks only on the current round.  On backends without ``submit``
        (and on the serial backend, whose ``submit`` is deliberately lazy)
        the returned handle computes on first ``result()`` call, so
        speculation never costs more than the non-speculative path.
        """
        task = self._task(machine_index, tenant_indices, probe=True)
        submit = getattr(self.backend, "submit", None)
        if submit is None:
            from ..parallel.backends import TaskHandle

            return TaskHandle(task.call)
        return submit(task)

    # ------------------------------------------------------------------
    # Per-machine solves
    # ------------------------------------------------------------------
    def solve(
        self, machine_index: int, tenant_indices: Tuple[int, ...]
    ) -> Tuple[RecommendationReport, float]:
        """Divide one machine among a tenant set with the inner advisor.

        Returns the per-machine report and its gain-weighted total cost.
        The solve itself is served by the fleet advisor's solve-memo when
        this (hardware, tenant set, advisor config) has been solved before;
        the cost-call statistics the call newly generated — a memo hit
        contributes only ``placement_solve_hits`` — are folded into
        :attr:`stats`.
        """
        with get_tracer().span(
            "solve.machine",
            leaf=True,
            machine=self.problem.machines[machine_index].name,
            tenants=len(tenant_indices),
        ) as span:
            report, weighted, stats = self.fleet_advisor.solve_machine(
                self.problem, machine_index, tenant_indices
            )
            span.set_attribute("memo_hit", stats is _MEMO_HIT_STATS)
        self._add_stats(stats)
        return report, weighted

    def solve_many(
        self, targets: Sequence[Tuple[int, Tuple[int, ...]]]
    ) -> List[Tuple[RecommendationReport, float]]:
        """Solve several machines' divisions, fanned out on the backend."""
        tasks = [
            self._task(machine_index, tenant_indices, probe=False)
            for machine_index, tenant_indices in targets
        ]
        return self.backend.run(tasks)

    # ------------------------------------------------------------------
    # Backend plumbing
    # ------------------------------------------------------------------
    def _add_stats(self, stats: CostCallStats) -> None:
        with self._stats_lock:
            self.stats = self.stats + stats

    def _task(
        self, machine_index: int, tenant_indices: Tuple[int, ...], probe: bool
    ) -> SolveTask:
        """One solve/probe as a backend task (portable when it can be)."""
        machine_name = self.problem.machines[machine_index].name
        if probe:
            call = lambda: self.machine_cost(machine_index, tenant_indices)  # noqa: E731
            worker_fn: Any = _worker.probe_machine
            reassemble: Any = self._reassemble_probe
        else:
            call = lambda: self.solve(machine_index, tenant_indices)  # noqa: E731
            worker_fn = _worker.solve_machine
            reassemble = self._reassemble_solve
        payload: Optional[Dict[str, Any]] = None
        if getattr(self.backend, "requires_portable_tasks", False):
            tracer = get_tracer()
            current = tracer.current
            payload = {
                **self._portable(),
                "machine_index": machine_index,
                "tenant_indices": tuple(sorted(tenant_indices)),
                # Workers record their own span subtree and ship it back
                # with the result — but only when the submitting context
                # would record a span itself (tracing on, not inside a
                # suppressing leaf region).
                "trace": bool(
                    tracer.enabled and current is not None and not current.leaf
                ),
            }
        return SolveTask(
            call=call,
            worker=worker_fn if payload is not None else None,
            payload=payload,
            reassemble=reassemble,
            label=f"{'probe' if probe else 'solve'}:{machine_name}",
        )

    def _portable(self) -> Dict[str, Any]:
        """Shared payload pieces; also publishes fork-inheritable state.

        The run *token* is a value digest of (problem, advisor config), so
        equal runs share worker-side state and unequal runs can never
        collide.  Raises :class:`~repro.exceptions.ConfigurationError` with
        the actual blocker when the inner advisor cannot be shipped (e.g.
        it was configured with strategy instances).
        """
        if self._portable_base is None:
            config = self.fleet_advisor.advisor.portable_config()
            problem_dict = self.problem.to_dict()
            token = hashlib.sha1(
                json.dumps(
                    {"problem": problem_dict, "advisor": config}, sort_keys=True
                ).encode("utf-8")
            ).hexdigest()
            _worker.publish_state(token, self.fleet_advisor, self.problem)
            self._portable_base = {
                "token": token,
                "problem": problem_dict,
                "advisor": config,
            }
        return self._portable_base

    def release(self) -> None:
        """Withdraw fork-published state once the run is over.

        Workers that already forked keep their own memoized copy (keyed by
        the run token), so withdrawing only drops the parent-side pin that
        would otherwise keep the advisor and problem alive in
        :mod:`repro.parallel.worker` after the run.
        """
        if self._portable_base is not None:
            _worker.withdraw_state(self._portable_base["token"])

    def _reassemble_probe(self, raw: Mapping[str, Any]) -> float:
        if raw["stats"] is not None:
            self._add_stats(CostCallStats.from_dict(raw["stats"]))
        get_tracer().graft(raw.get("spans"))
        return math.inf if raw["weighted"] is None else raw["weighted"]

    def _reassemble_solve(
        self, raw: Mapping[str, Any]
    ) -> Tuple[RecommendationReport, float]:
        self._add_stats(CostCallStats.from_dict(raw["stats"]))
        get_tracer().graft(raw.get("spans"))
        return RecommendationReport.from_dict(raw["report"]), raw["weighted"]


class FleetAdvisor:
    """Places tenants across a fleet and configures every machine's VMs.

    Args:
        placement: a :class:`~repro.fleet.strategies.PlacementStrategy`
            instance or a name registered in
            :data:`~repro.fleet.strategies.PLACEMENTS` (``"greedy-cost"``,
            ``"round-robin"``, ``"first-fit"``).
        advisor: the per-machine :class:`~repro.api.Advisor` to delegate
            division to; built from ``advisor_options`` when omitted
            (e.g. ``FleetAdvisor(enumerator="exhaustive-dp", delta=0.1)``).
        backend: the solver-execution backend independent per-machine
            solves and placement probes fan out on — a name registered in
            :data:`~repro.parallel.backends.BACKENDS` (``"serial"``,
            ``"thread"``, ``"process"``) or a
            :class:`~repro.parallel.backends.SolverBackend` instance.
            Every backend returns the serial answer (see
            :meth:`~repro.fleet.report.FleetReport.canonical_dict`).
        jobs: worker count for a backend given by name.
        advisor_options: keyword arguments for the inner advisor when one
            is not supplied.
    """

    def __init__(
        self,
        placement: PlacementSpec = "greedy-cost",
        advisor: Optional[Advisor] = None,
        backend: BackendSpec = "serial",
        jobs: Optional[int] = None,
        **advisor_options: Any,
    ) -> None:
        if advisor is not None and advisor_options:
            raise ConfigurationError(
                "pass either an Advisor instance or advisor keyword "
                "arguments, not both"
            )
        self.advisor = advisor if advisor is not None else Advisor(**advisor_options)
        self.backend = resolve_backend(backend, jobs)
        self.placement = placement  # property: resolves names, tracks provenance
        #: One calibrated builder per distinct hardware shape (+ overrides).
        self._builders: Dict[_BuilderKey, ProblemBuilder] = {}
        #: Memoized consolidated workloads and design problems, keyed by
        #: value (hardware, tenant spec, resources) so re-materializing the
        #: same machine/tenant set returns identical objects and the inner
        #: advisor's shared cost cache keeps answering for them.  Both are
        #: LRU-bounded so a long-lived advisor serving many distinct fleets
        #: cannot grow without limit (mirroring the inner advisor's bounds).
        self._tenant_memo: "OrderedDict[Any, ConsolidatedWorkload]" = OrderedDict()
        self._problem_memo: "OrderedDict[Any, VirtualizationDesignProblem]" = (
            OrderedDict()
        )
        #: Whole per-machine solve results — report + gain-weighted cost —
        #: keyed by (hardware, tenant-set specs, resource knobs, advisor
        #: config).  Where the problem memo saves re-*materializing* a
        #: design and the cost cache saves re-*evaluating* allocations,
        #: this saves re-*searching*: a repeated placement probe or
        #: committed division is one dictionary lookup (it has its own
        #: lock; see :mod:`repro.fleet.solve_memo`).
        self.solve_memo = SolveMemo(DEFAULT_SOLVE_MEMO_SIZE)
        #: Lazily computed advisor-configuration token for solve-memo keys
        #: (the inner advisor's config is fixed for this fleet advisor's
        #: lifetime, like every other memo here assumes).
        self._solve_token: Optional[Tuple[Any, ...]] = None
        #: Guards the builder map and both memos.  Concurrent per-machine
        #: solves (thread backend) materialize problems through one fleet
        #: advisor; the reentrant lock keeps the check-then-create chains
        #: (problem memo → tenant memo → builder) atomic so value-equal
        #: requests always return the *same* objects — the identity the
        #: shared cost cache answers for.
        self._memo_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Strategy resolution
    # ------------------------------------------------------------------
    @property
    def placement(self) -> PlacementStrategy:
        """The resolved placement strategy (assignable by instance or name)."""
        return self._placement

    @placement.setter
    def placement(self, spec: PlacementSpec) -> None:
        self._placement_name = _placement_name(spec)
        self._placement = self._resolve_placement(spec)

    def _resolve_placement(self, spec: PlacementSpec) -> PlacementStrategy:
        if isinstance(spec, str):
            return PLACEMENTS.create(spec)
        if not callable(getattr(spec, "place", None)):
            raise ConfigurationError(
                f"placement must be a registered name or provide a "
                f"place(problem, solver) method; got {type(spec).__name__}"
            )
        return spec

    # ------------------------------------------------------------------
    # Calibrated infrastructure (shared across fleet problems)
    # ------------------------------------------------------------------
    def _builder_key(
        self, machine: Machine, problem: FleetProblem
    ) -> _BuilderKey:
        calibration = tuple(sorted((problem.calibration or {}).items()))
        return (machine.hardware_key, calibration)

    def _builder_for(self, machine: Machine, problem: FleetProblem) -> ProblemBuilder:
        """The calibrated builder for one hardware shape.

        Machines with equal capacity share one builder — and therefore one
        set of engine calibrations and one family of cost-cache keys — no
        matter how many of them the fleet contains.
        """
        key = self._builder_key(machine, problem)
        with self._memo_lock:
            builder = self._builders.get(key)
            if builder is None:
                physical = machine.physical()
                settings = (
                    CalibrationSettings(**problem.calibration)
                    if problem.calibration
                    else None
                )
                builder = ProblemBuilder(machine=physical, calibration_settings=settings)
                self._builders[key] = builder
            return builder

    def _consolidated(
        self, problem: FleetProblem, machine: Machine, tenant_index: int
    ) -> ConsolidatedWorkload:
        """The (memoized) consolidated workload of one tenant on one hardware."""
        tenant = problem.tenants[tenant_index]
        key = (self._builder_key(machine, problem), tenant.spec)
        with self._memo_lock:
            memoized = self._tenant_memo.get(key)
            if memoized is not None:
                self._tenant_memo.move_to_end(key)
                return memoized
            builder = self._builder_for(machine, problem)
            consolidated = builder.consolidated(tenant.spec)
            self._tenant_memo[key] = consolidated
            while len(self._tenant_memo) > _TENANT_MEMO_SIZE:
                self._tenant_memo.popitem(last=False)
            return consolidated

    def _design_problem(
        self,
        problem: FleetProblem,
        machine: Machine,
        tenant_indices: Tuple[int, ...],
    ) -> VirtualizationDesignProblem:
        """The (memoized) per-machine design problem for a tenant set."""
        specs = tuple(problem.tenants[index].spec for index in tenant_indices)
        key = (
            self._builder_key(machine, problem),
            specs,
            problem.resources,
            problem.fixed_memory_fraction,
        )
        with self._memo_lock:
            memoized = self._problem_memo.get(key)
            if memoized is not None:
                self._problem_memo.move_to_end(key)
                return memoized
            tenants = tuple(
                self._consolidated(problem, machine, index) for index in tenant_indices
            )
            design = VirtualizationDesignProblem(
                tenants=tenants,
                resources=problem.resources,
                fixed_memory_fraction=problem.fixed_memory_fraction,
            )
            self._problem_memo[key] = design
            while len(self._problem_memo) > _PROBLEM_MEMO_SIZE:
                self._problem_memo.popitem(last=False)
            return design

    def machine_problem(
        self,
        problem: FleetProblem,
        machine_index: int,
        tenant_indices: Tuple[int, ...],
    ) -> VirtualizationDesignProblem:
        """The per-machine design problem for a tenant set (public view).

        Memoized by value: asking for the same machine hardware and tenant
        specs again returns the *same* problem object, whose workloads the
        shared cost cache keeps answering for.  The trace replayer uses
        this to materialize each period's per-machine problems.
        """
        ordered = tuple(sorted(tenant_indices))
        machine = problem.machines[machine_index]
        return self._design_problem(problem, machine, ordered)

    # ------------------------------------------------------------------
    # Memoized per-machine solves (the placement fast path)
    # ------------------------------------------------------------------
    def _advisor_token(self) -> Tuple[Any, ...]:
        """A hashable token for the inner advisor's configuration.

        Part of every solve-memo key, so results can never be served
        across differently configured advisors (the worker-side advisors
        of the process backend are memoized per config and share one memo
        semantics).  Instance-configured advisors fall back to an identity
        token — correct for this advisor's lifetime, never shareable.
        """
        if self._solve_token is None:
            try:
                config = self.advisor.portable_config()
            except ConfigurationError:
                config = {"instance": id(self.advisor)}
            self._solve_token = tuple(sorted(config.items()))
        return self._solve_token

    def _solve_key(
        self, problem: FleetProblem, machine: Machine, ordered: Tuple[int, ...]
    ) -> Tuple[Any, ...]:
        """The solve-memo key: everything the machine's answer depends on.

        Mirrors the design-problem memo key — hardware shape (+ calibration
        overrides), tenant-set spec values, resource knobs — plus the
        advisor-configuration token.  Two machines sharing a
        ``hardware_key``, or two value-equal fleets, therefore share solve
        results exactly as they share cost-cache entries.
        """
        specs = tuple(problem.tenants[index].spec for index in ordered)
        return (
            self._builder_key(machine, problem),
            specs,
            problem.resources,
            problem.fixed_memory_fraction,
            self._advisor_token(),
        )

    def solve_machine(
        self,
        problem: FleetProblem,
        machine_index: int,
        tenant_indices: Tuple[int, ...],
    ) -> Tuple[RecommendationReport, float, CostCallStats]:
        """Divide one machine among a tenant set, served from the solve-memo.

        Returns ``(report, gain-weighted cost, stats)`` where ``stats`` is
        the cost-call accounting this call *newly* generated: the full
        solve's statistics on a miss, a single ``placement_solve_hits`` on
        a hit.  Infeasible tenant sets are memoized too — a repeat ask
        raises an equivalent :class:`~repro.exceptions.OptimizationError`
        without re-running the search.
        """
        ordered = tuple(sorted(tenant_indices))
        machine = problem.machines[machine_index]
        key = self._solve_key(problem, machine, ordered)
        cached = self.solve_memo.get(key)
        if isinstance(cached, Infeasible):
            raise OptimizationError(cached.message)
        if cached is not None:
            report, weighted = cached
            return report, weighted, _MEMO_HIT_STATS
        design = self._design_problem(problem, machine, ordered)
        try:
            report = self.advisor.recommend(design)
        except OptimizationError as error:
            self.solve_memo.put(key, Infeasible(str(error)))
            raise
        weighted = sum(
            tenant.gain_factor * cost
            for tenant, cost in zip(design.tenants, report.per_workload_costs)
        )
        self.solve_memo.put(key, (report, weighted))
        return report, weighted, report.cost_stats

    def clear_caches(self) -> None:
        """Drop the calibrated builders, memoized problems, and cost caches."""
        with self._memo_lock:
            self._builders.clear()
            self._tenant_memo.clear()
            self._problem_memo.clear()
        self.solve_memo.clear()
        self.advisor.clear_caches()

    # ------------------------------------------------------------------
    # Backend resolution
    # ------------------------------------------------------------------
    def _resolve_run_backend(
        self, backend: Optional[BackendSpec], jobs: Optional[int]
    ) -> Tuple[SolverBackend, bool]:
        """The backend one call runs on, and whether this call owns it.

        A per-call override (name or instance) is resolved fresh; a backend
        this advisor created from a *name* for one call is closed when the
        call finishes (it may hold worker processes), which the ``owned``
        flag signals to the caller.
        """
        if backend is None and jobs is None:
            return self.backend, False
        if backend is None:
            # A jobs-only override re-creates the advisor's backend at the
            # requested width, which is only possible when that backend
            # came from the registry; a custom instance must be re-supplied
            # (its constructor, not its name, knows how to size it).
            name = getattr(self.backend, "name", None)
            if not isinstance(name, str) or name not in BACKENDS:
                raise ConfigurationError(
                    f"jobs={jobs} alone cannot resize this advisor's custom "
                    f"backend ({type(self.backend).__name__}); pass a backend "
                    f"instance configured with the desired worker count"
                )
            backend = name
        resolved = resolve_backend(backend, jobs)
        return resolved, isinstance(backend, str)

    # ------------------------------------------------------------------
    # Fleet recommendation
    # ------------------------------------------------------------------
    def recommend(
        self,
        problem: FleetProblem,
        placement: Optional[PlacementSpec] = None,
        backend: Optional[BackendSpec] = None,
        jobs: Optional[int] = None,
    ) -> FleetReport:
        """Place every tenant and configure every machine of the fleet.

        ``placement`` overrides the advisor-level strategy for this call
        only (e.g. ``recommend(problem, placement="round-robin")`` for a
        baseline comparison over the same calibrations and caches);
        ``backend`` / ``jobs`` likewise override the solver-execution
        backend for this call (``recommend(problem, backend="thread",
        jobs=4)``).  Whatever the backend, the report's *answer* is
        bit-identical to the serial one (``canonical_dict()``); only
        wall-clock time and cache-traffic accounting may differ.
        """
        started = time.perf_counter()
        run_backend, owned = self._resolve_run_backend(backend, jobs)
        solver = _FleetSolver(self, problem, run_backend)
        try:
            if placement is None:
                strategy, strategy_name = self._placement, self._placement_name
            else:
                strategy = self._resolve_placement(placement)
                strategy_name = _placement_name(placement)
            memo_hits_before = self.solve_memo.hits
            with get_tracer().span(
                "fleet.recommend",
                fleet=problem.name,
                tenants=problem.n_tenants,
                machines=problem.n_machines,
                strategy=strategy_name,
                backend=getattr(run_backend, "name", type(run_backend).__name__),
                jobs=run_backend.jobs,
            ) as root:
                with get_tracer().span("placement.place", strategy=strategy_name):
                    assignment = strategy.place(problem, solver)
                placed = Placement(problem, assignment, strategy=strategy_name)
                report = self._finalize(
                    problem,
                    solver,
                    placed,
                    strategy_name,
                    started,
                    provenance=_placement_provenance(strategy),
                )
                root.set_attributes(
                    evaluations=solver.stats.evaluations,
                    cache_hits_delta=solver.stats.cache_hits,
                    memo_hits_delta=self.solve_memo.hits - memo_hits_before,
                    total_weighted_cost=report.total_weighted_cost,
                )
            return report
        finally:
            solver.release()
            if owned:
                run_backend.close()

    def recommend_incremental(
        self,
        problem: FleetProblem,
        previous: Union[FleetReport, Placement, Mapping[str, str]],
        moved: Optional[Iterable[str]] = None,
        backend: Optional[BackendSpec] = None,
        jobs: Optional[int] = None,
    ) -> FleetReport:
        """Re-place only the changed tenants of an already-placed fleet.

        ``previous`` is the placement in force (a :class:`FleetReport`, a
        :class:`~repro.fleet.problem.Placement`, or a plain tenant-name →
        machine-name mapping).  Tenants named in ``moved`` — plus any
        tenant of ``problem`` the previous placement does not cover — are
        pulled off their machines and greedily re-placed where the marginal
        gain-weighted cost increase is smallest; everybody else stays put.

        Because per-machine problems are memoized by value and every solve
        runs through the shared cost cache, machines whose tenant set and
        workloads did not change are re-priced entirely from the cache:
        only the moved tenants (and the machines they leave or join) cost
        new evaluations, which is what makes trace-driven re-placement
        cheap to run every monitoring period.  ``backend`` / ``jobs``
        override the solver-execution backend for this call, as in
        :meth:`recommend`.
        """
        started = time.perf_counter()
        moved = tuple(moved) if moved is not None else None
        run_backend, owned = self._resolve_run_backend(backend, jobs)
        solver = _FleetSolver(self, problem, run_backend)
        try:
            with get_tracer().span(
                "fleet.recommend_incremental",
                fleet=problem.name,
                tenants=problem.n_tenants,
                machines=problem.n_machines,
                backend=getattr(run_backend, "name", type(run_backend).__name__),
                jobs=run_backend.jobs,
                moved=len(moved) if moved is not None else 0,
            ):
                return self._recommend_incremental(
                    problem, previous, moved, solver, started
                )
        finally:
            solver.release()
            if owned:
                run_backend.close()

    def _recommend_incremental(
        self,
        problem: FleetProblem,
        previous: Union[FleetReport, Placement, Mapping[str, str]],
        moved: Optional[Iterable[str]],
        solver: _FleetSolver,
        started: float,
    ) -> FleetReport:
        if isinstance(previous, FleetReport):
            mapping: Mapping[str, str] = previous.placement
        elif isinstance(previous, Placement):
            mapping = previous.as_mapping()
        else:
            mapping = dict(previous)
        machine_index_of = {
            machine.name: index for index, machine in enumerate(problem.machines)
        }
        names = problem.tenant_names()
        moved_set = set(moved) if moved is not None else set()
        unknown = moved_set - set(names)
        if unknown:
            raise ConfigurationError(
                f"moved tenant(s) not in the fleet problem: "
                f"{', '.join(map(repr, sorted(unknown)))}"
            )
        moved_set |= {name for name in names if name not in mapping}

        assignment: List[Optional[int]] = [None] * problem.n_tenants
        loads: List[List[int]] = [[] for _ in problem.machines]
        for tenant_index, name in enumerate(names):
            if name in moved_set:
                continue
            machine_name = mapping[name]
            if machine_name not in machine_index_of:
                raise ConfigurationError(
                    f"previous placement assigns tenant {name!r} to unknown "
                    f"machine {machine_name!r}"
                )
            machine_index = machine_index_of[machine_name]
            assignment[tenant_index] = machine_index
            loads[machine_index].append(tenant_index)
        for machine_index, pinned in enumerate(loads):
            if pinned and not solver.fits(machine_index, tuple(pinned)):
                machine = problem.machines[machine_index]
                kept = [problem.tenants[index].name for index in pinned]
                raise PlacementError(
                    f"machine {machine.name!r} cannot keep hosting "
                    f"{', '.join(map(repr, kept))}: capacity exceeded; "
                    f"add the overflowing tenants to 'moved'"
                )
        occupied = [
            (machine_index, tuple(pinned))
            for machine_index, pinned in enumerate(loads)
            if pinned
        ]
        occupied_costs = dict(
            zip((index for index, _ in occupied), solver.machine_costs(occupied))
        )
        current_cost = [
            occupied_costs.get(machine_index, 0.0)
            for machine_index in range(problem.n_machines)
        ]
        order = sorted(
            (index for index, slot in enumerate(assignment) if slot is None),
            key=lambda index: (-problem.tenants[index].gain_factor, index),
        )
        final = greedy_assign(problem, solver, order, assignment, loads, current_cost)
        placed = Placement(problem, final, strategy="incremental")
        return self._finalize(problem, solver, placed, "incremental", started)

    def _finalize(
        self,
        problem: FleetProblem,
        solver: _FleetSolver,
        placed: Placement,
        strategy_name: str,
        started: float,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> FleetReport:
        """Solve every machine of a committed placement and assemble the report.

        The committed per-machine solves are independent, so they fan out
        on the run's backend; machine reports are reassembled in machine
        order, keeping the report layout identical across backends.
        """
        occupied = [
            (machine_index, placed.tenants_on(machine_index))
            for machine_index in range(problem.n_machines)
            if placed.tenants_on(machine_index)
        ]
        with get_tracer().span("fleet.finalize", machines=len(occupied)):
            solved = dict(
                zip(
                    (index for index, _ in occupied),
                    solver.solve_many(occupied),
                )
            )

        machine_reports: List[MachineReport] = []
        total_cost = 0.0
        total_weighted = 0.0
        for machine_index, machine in enumerate(problem.machines):
            if machine_index not in solved:
                machine_reports.append(
                    MachineReport(
                        machine=machine, tenants=(), report=None, weighted_cost=0.0
                    )
                )
                continue
            report, weighted = solved[machine_index]
            tenant_indices = placed.tenants_on(machine_index)
            names = tuple(problem.tenants[index].name for index in tenant_indices)
            machine_reports.append(
                MachineReport(
                    machine=machine,
                    tenants=names,
                    report=report,
                    weighted_cost=weighted,
                )
            )
            total_cost += report.total_cost
            total_weighted += weighted

        return FleetReport(
            fleet_name=problem.name,
            strategy=strategy_name,
            placement=placed.as_mapping(),
            machines=tuple(machine_reports),
            total_cost=total_cost,
            total_weighted_cost=total_weighted,
            cost_stats=solver.stats,
            wall_time_seconds=time.perf_counter() - started,
            backend=getattr(solver.backend, "name", type(solver.backend).__name__),
            jobs=solver.backend.jobs,
            placement_provenance=provenance,
        )
