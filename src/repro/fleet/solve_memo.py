"""The fleet solve-memo: whole per-machine solve results, cached by value.

The cost layer already memoizes aggressively — the shared
:class:`~repro.api.cache.CostCache` never re-evaluates a (workload,
calibration, allocation) question — but a placement *probe* still re-runs
the per-machine enumerator's search over those cached values every time it
prices a candidate co-location.  On a warm fleet advisor that search is
the dominant cost of a probe: greedy placement prices every (tenant,
machine) pair, the local-search improver re-prices the same tenant sets
across rounds, and machines sharing a ``hardware_key`` re-solve identical
candidate sets from scratch.

:class:`SolveMemo` closes that gap by caching the *entire solve result* —
the chosen allocation (as a :class:`~repro.api.report.RecommendationReport`)
plus its gain-weighted cost — keyed by the value of everything the answer
depends on: the machine's hardware shape (+ calibration overrides), the
tenant-set spec digest, the problem's resource/memory-model knobs, and the
inner advisor's configuration token (see
``FleetAdvisor._solve_key``).  A memo hit turns a repeat probe into one
dictionary lookup.  Infeasible co-locations (the enumerator raised
:class:`~repro.exceptions.OptimizationError`) are memoized too, as the
error message, so repeatedly probing a QoS-blocked candidate never re-runs
the search either.

The memo follows the fleet advisor's house rules for memoized state: a
single lock guards every access (probes arrive concurrently from the
thread/asyncio backends), it is LRU-bounded like the tenant/problem memos
(eviction never affects correctness — an evicted entry is simply re-solved
through the cost cache), and it keeps hit/miss counters that surface as
``placement_solve_hits`` in :class:`~repro.api.report.CostCallStats` and
in the service's ``/stats`` payload.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from ..exceptions import ConfigurationError
from ..telemetry.instruments import MEMO_HITS, MEMO_MISSES

#: Bound on retained solve results.  A greedy+local-search run over a
#: T-tenant × M-machine fleet touches O(T·M + T²) distinct tenant sets;
#: this comfortably covers repeated runs over several distinct fleets.
DEFAULT_SOLVE_MEMO_SIZE = 4096


class Infeasible:
    """Memoized outcome of a solve the enumerator proved infeasible.

    Stores the original :class:`~repro.exceptions.OptimizationError`
    message so a repeat ask can raise an equivalent error without
    re-running the search.
    """

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Infeasible({self.message!r})"


class SolveMemo:
    """Thread-safe, LRU-bounded memo of whole per-machine solve results.

    Values are either ``(report, weighted_cost)`` tuples or
    :class:`Infeasible` markers; keys are opaque hashables built by the
    fleet advisor.  All statistics are monotone counters over the memo's
    lifetime (:meth:`clear` resets them with the entries).
    """

    def __init__(self, max_entries: int = DEFAULT_SOLVE_MEMO_SIZE) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The memoized result for ``key``, or ``None`` (counted as a miss).

        A hit refreshes the entry's LRU position and increments
        :attr:`hits`; the caller distinguishes feasible results (a
        ``(report, weighted)`` tuple) from :class:`Infeasible` markers.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        # Outside the memo lock: the process-wide counters have their own.
        if entry is None:
            MEMO_MISSES.inc()
            return None
        MEMO_HITS.inc()
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Store a solve result (or :class:`Infeasible`), evicting LRU-first."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def stats(self) -> Dict[str, Any]:
        """A JSON-safe statistics snapshot (the ``/stats`` payload shape)."""
        with self._lock:
            hits, misses, entries = self._hits, self._misses, len(self._entries)
        lookups = hits + misses
        return {
            "entries": entries,
            "max_entries": self.max_entries,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
        }


SolveResult = Tuple[Any, float]
