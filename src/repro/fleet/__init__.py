"""Fleet-scale consolidation: tenant placement across many machines.

The paper's advisor divides **one** machine among ``N`` workloads; this
package adds the layer above it for a machine *fleet*:

* :class:`Machine`, :class:`FleetTenant`, :class:`FleetProblem` — the
  declarative, JSON round-trippable data model of "which tenants, which
  machines, what capacities" (:mod:`repro.fleet.problem`).
* :data:`PLACEMENTS` and the built-in strategies — ``"greedy-cost"`` (and
  its speculative twin ``"greedy-cost-spec"``), ``"greedy-cost+ls"`` (the
  local-search improver), ``"bnb-fleet"`` (exact branch and bound at
  paper-sized fleets, :mod:`repro.fleet.bnb`), ``"exhaustive-fleet"``
  (the exact small-fleet baseline), ``"round-robin"``, ``"first-fit"`` —
  behind the same open registry pattern as the per-machine strategies
  (:mod:`repro.fleet.strategies`).
* :class:`FleetAdvisor` — places tenants, then delegates every machine's
  internal split to the existing :class:`repro.api.Advisor` over a shared
  cost cache (:mod:`repro.fleet.advisor`).
* :class:`FleetReport` / :class:`MachineReport` — the serializable
  two-level answer (:mod:`repro.fleet.report`).

Quick start::

    from repro.fleet import FleetAdvisor, FleetProblem, Machine

    fleet = FleetProblem(
        machines=[Machine("m1"), Machine("m2"), Machine("m3")],
        tenants=[
            {"name": f"tenant-{i}", "engine": "postgresql",
             "statements": [["q17", 1.0]]}
            for i in range(8)
        ],
    )
    report = FleetAdvisor().recommend(fleet)
    print(report.placement)            # tenant -> machine
    print(report.total_weighted_cost)  # the fleet objective
"""

from .advisor import FleetAdvisor
from .bnb import BnbSearchStats, BranchAndBoundPlacement
from .problem import (
    DEFAULT_MEMORY_DEMAND_MB,
    FleetProblem,
    FleetTenant,
    Machine,
    Placement,
)
from .report import FleetReport, MachineReport
from .solve_memo import SolveMemo
from .strategies import (
    PLACEMENTS,
    ExhaustiveFleetPlacement,
    FirstFitPlacement,
    GreedyCostPlacement,
    LocalSearchPlacement,
    PlacementSolver,
    PlacementStrategy,
    RoundRobinPlacement,
    improve_assignment,
)

__all__ = [
    "BnbSearchStats",
    "BranchAndBoundPlacement",
    "DEFAULT_MEMORY_DEMAND_MB",
    "ExhaustiveFleetPlacement",
    "FirstFitPlacement",
    "FleetAdvisor",
    "FleetProblem",
    "FleetReport",
    "FleetTenant",
    "GreedyCostPlacement",
    "improve_assignment",
    "LocalSearchPlacement",
    "Machine",
    "MachineReport",
    "Placement",
    "PLACEMENTS",
    "PlacementSolver",
    "PlacementStrategy",
    "RoundRobinPlacement",
    "SolveMemo",
]
