"""Exact fleet placement by branch and bound: ``"bnb-fleet"``.

:class:`~repro.fleet.strategies.ExhaustiveFleetPlacement` measures the
greedy strategies' optimality gap, but only on toy fleets — it enumerates
all ``M^T`` assignments, so a paper-sized 12-tenant × 4-machine fleet
(16.7M assignments) is out of reach.  :class:`BranchAndBoundPlacement`
finds the *same* optimum while exploring a tiny fraction of that tree:

* **Branching** assigns one tenant per tree level, in descending gain
  factor (then problem order) — the heavyweight tenants, whose placement
  moves the objective most, are decided near the root where pruning is
  cheapest.  Children of a node (the candidate machines of the next
  tenant) are priced as one batch through the placement solver, so node
  evaluation fans out on the run's solver-execution backend and warm
  paths are answered by the fleet solve-memo.
* **Bounding** prunes a partial assignment when an admissible lower bound
  on its best completion exceeds the incumbent: the committed machines'
  exact costs plus, for every unassigned tenant, the cost of that tenant
  *alone on its best machine* (:func:`best_alone_costs`, precomputed as
  one batch at the root).  Per-machine cost is monotone in the hosted
  tenant set — granting a dropped tenant's resources to the survivors
  never raises their costs — so each tenant's best-alone cost understates
  its share of any completion and the bound never prunes an optimum
  (see :func:`completion_lower_bound`; a property test asserts it).
* **Symmetry breaking** expands at most one child per group of machines
  with equal ``(hardware_key, max_tenants)`` *and* equal current tenant
  set (in practice: the empty machines of one hardware class).  Such
  machines are interchangeable, so the skipped children's subtrees are
  machine-relabelings of the expanded one; the final answer is restored
  to the lexicographically smallest relabeling
  (:func:`canonical_assignment`), which is exactly the representative
  ``exhaustive-fleet``'s lexicographic scan would have kept.
* **Incumbent seeding** runs ``greedy-cost+ls`` first, so the search
  opens with a tight upper bound instead of discovering one leaf by leaf.

The search is exhaustive over the non-pruned tree, so the returned
assignment is *bit-identical* to ``exhaustive-fleet``'s: ties within the
same ``1e-12`` tolerance resolve to the lexicographically smallest
assignment, the incumbent seed competes under the same rule, and node
evaluation order never changes the winner.  Because all pruning decisions
derive from solver costs — pure functions of their (machine, tenant-set)
keys — the explored tree, the node counts, and the answer are identical
on every solver backend (``canonical_dict`` equality is asserted in CI).

Budgets make the solver safe to serve: ``max_nodes`` / ``max_seconds``
cap the search, and on exhaustion the strategy *degrades* to the best
incumbent found so far (at worst the greedy+ls seed) instead of raising.
:attr:`BranchAndBoundPlacement.last_search` records the outcome —
``proven_optimal``, the budget that tripped, node counts — and the fleet
advisor surfaces it as ``placement_provenance`` on the report and over
the ``/fleet`` wire.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError, PlacementError
from ..telemetry.instruments import BNB_NODES, BNB_PRUNED
from ..telemetry.trace import get_tracer
from .problem import FleetProblem
from .strategies import (
    PLACEMENTS,
    LocalSearchPlacement,
    PlacementSolver,
    PlacementStrategy,
    _price_candidates,
    _unplaceable,
)

#: Tolerance of every cost comparison, matching ``exhaustive-fleet``'s:
#: a candidate must beat the incumbent by more than this to displace it.
_EPSILON = 1e-12

#: Default node budget.  One "node" is one priced partial assignment;
#: the 12×4 benchmark fleet needs a few hundred, so this bounds runaway
#: searches (adversarial instances, weak bounds) without ever touching a
#: well-behaved one.
DEFAULT_MAX_NODES = 200_000

#: Sentinel distinguishing "default seed" from an explicit ``seed=None``
#: (run unseeded).
_DEFAULT_SEED = object()

#: Nodes between ``progress`` events on the ``bnb.search`` span.  The
#: search prices thousands of nodes per second, so per-node events would
#: dominate the trace; a coarse cadence keeps long searches observable.
_PROGRESS_EVERY = 2000

#: Symmetry class of one machine: machines sharing this key (and their
#: current tenant set) are physically interchangeable for placement.
_ClassKey = Tuple[Tuple[float, float, int], Optional[int]]


def symmetry_classes(problem: FleetProblem) -> List[_ClassKey]:
    """The symmetry class of each machine, in machine order.

    Two machines are interchangeable exactly when they share capacity
    (``hardware_key``) *and* tenant cap (``max_tenants``): the per-machine
    solve depends only on the hardware shape, and feasibility on both.
    """
    return [
        (machine.hardware_key, machine.max_tenants)
        for machine in problem.machines
    ]


def canonical_assignment(
    assignment: Sequence[int], classes: Sequence[_ClassKey]
) -> Tuple[int, ...]:
    """The lexicographically smallest machine-relabeling of an assignment.

    Machines within one symmetry class may be permuted freely without
    changing cost or feasibility; scanning tenants in problem order and
    giving each newly seen machine the smallest unused index of its class
    yields the unique lexicographic minimum of that orbit — the
    representative ``exhaustive-fleet``'s lexicographic scan keeps.
    Machines in singleton classes keep their index.
    """
    members: Dict[_ClassKey, List[int]] = {}
    for index, key in enumerate(classes):
        members.setdefault(key, []).append(index)
    next_label = {key: 0 for key in members}
    relabel: Dict[int, int] = {}
    canonical: List[int] = []
    for machine_index in assignment:
        label = relabel.get(machine_index)
        if label is None:
            key = classes[machine_index]
            label = members[key][next_label[key]]
            next_label[key] += 1
            relabel[machine_index] = label
        canonical.append(label)
    return tuple(canonical)


def best_alone_costs(
    problem: FleetProblem, solver: PlacementSolver
) -> List[float]:
    """Each tenant's cheapest solo placement — the bound's building block.

    All ``T × M`` solo probes are priced as one batch, so they fan out on
    the solver backend, and machines sharing a hardware shape collapse to
    one solve in the fleet solve-memo.  A tenant no machine can host
    (capacity, or degradation limits even with the whole machine to
    itself) is unplaceable outright — co-location only costs more — and
    raises :class:`~repro.exceptions.PlacementError` here, before any
    search is spent.
    """
    candidates: List[Tuple[int, Tuple[int, ...]]] = []
    for tenant_index in range(problem.n_tenants):
        for machine_index in range(problem.n_machines):
            if solver.fits(machine_index, (tenant_index,)):
                candidates.append((machine_index, (tenant_index,)))
    priced = dict(zip(candidates, _price_candidates(solver, candidates)))
    best: List[float] = []
    for tenant_index in range(problem.n_tenants):
        fitting = [
            priced[(machine_index, (tenant_index,))]
            for machine_index in range(problem.n_machines)
            if (machine_index, (tenant_index,)) in priced
        ]
        if not fitting:
            raise _unplaceable(problem, tenant_index)
        cheapest = min(fitting)
        if math.isinf(cheapest):
            raise _unplaceable(problem, tenant_index, qos_blocked=True)
        best.append(cheapest)
    return best


def completion_lower_bound(
    committed_cost: float,
    best_alone: Sequence[float],
    unassigned: Sequence[int],
) -> float:
    """An admissible bound on completing a partial assignment.

    ``committed_cost`` is the exact summed cost of the machines as loaded
    so far; every unassigned tenant contributes its best-alone cost.
    Admissibility: per-machine cost is monotone in the tenant set (an
    allocation for ``S ∪ {t}`` restricted to ``S`` — with ``t``'s share
    granted to any survivor — is feasible for ``S`` and no costlier), so
    by induction ``cost(m, F) ≥ cost(m, S) + Σ_{t ∈ F∖S} cost(m, {t})``
    and ``cost(m, {t}) ≥ min_m' cost(m', {t})``.  Hence the bound never
    exceeds the true cost of any completion.
    """
    return committed_cost + sum(best_alone[index] for index in unassigned)


@dataclass(frozen=True)
class BnbSearchStats:
    """Outcome and accounting of one branch-and-bound placement search.

    Attributes:
        nodes_explored: partial assignments priced (tree nodes evaluated).
        nodes_pruned: subtrees cut by the admissible bound.
        leaves_evaluated: complete assignments reached and compared.
        incumbent_updates: how often a better (or lex-smaller tied)
            complete assignment displaced the incumbent.
        full_tree_size: ``M^T``, the assignments exhaustive enumeration
            would price — the denominator of the node-count reduction.
        seeded_cost: the incumbent cost the search opened with (the
            greedy+ls seed), ``None`` when unseeded or the seed failed.
        best_cost: the returned assignment's total gain-weighted cost.
        proven_optimal: whether the search exhausted the non-pruned tree
            (``False`` exactly when a budget tripped).
        budget_exhausted: which budget stopped the search — ``"nodes"``,
            ``"time"``, or ``None``.
        max_nodes: the node budget in force.
        max_seconds: the time budget in force (``None`` = unlimited).
        elapsed_seconds: wall-clock time of the whole placement,
            seed included.
    """

    nodes_explored: int
    nodes_pruned: int
    leaves_evaluated: int
    incumbent_updates: int
    full_tree_size: int
    seeded_cost: Optional[float]
    best_cost: float
    proven_optimal: bool
    budget_exhausted: Optional[str]
    max_nodes: int
    max_seconds: Optional[float]
    elapsed_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe provenance payload (``placement_provenance``)."""
        return {
            "strategy": "bnb-fleet",
            "nodes_explored": self.nodes_explored,
            "nodes_pruned": self.nodes_pruned,
            "leaves_evaluated": self.leaves_evaluated,
            "incumbent_updates": self.incumbent_updates,
            "full_tree_size": self.full_tree_size,
            "seeded_cost": self.seeded_cost,
            "best_cost": self.best_cost,
            "proven_optimal": self.proven_optimal,
            "budget_exhausted": self.budget_exhausted,
            "max_nodes": self.max_nodes,
            "max_seconds": self.max_seconds,
            "elapsed_seconds": self.elapsed_seconds,
        }


class _BudgetExhausted(Exception):
    """Internal unwind signal: a node or time budget tripped mid-search."""

    def __init__(self, which: str) -> None:
        super().__init__(which)
        self.which = which


class BranchAndBoundPlacement:
    """Exact placement far past ``M^T`` enumeration — see the module doc.

    Args:
        max_nodes: node budget; one node is one priced partial assignment.
        max_seconds: wall-clock budget for the whole placement (``None``
            = unlimited); checked between node expansions.
        seed: the strategy whose answer opens the search as the incumbent
            (default ``greedy-cost+ls``); ``None`` starts unseeded.
        symmetry_breaking: expand one representative per interchangeable
            machine group (answers are identical either way; the tree is
            much smaller with it on).

    On budget exhaustion the best incumbent is returned — at worst the
    seed's assignment — and :attr:`last_search` records
    ``proven_optimal=False`` plus which budget tripped; the fleet advisor
    surfaces that as the report's ``placement_provenance``.  An exhausted
    *unseeded* search that never reached a leaf has nothing to degrade to
    and raises :class:`~repro.exceptions.PlacementError`.
    """

    name = "bnb-fleet"

    def __init__(
        self,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_seconds: Optional[float] = None,
        seed: Any = _DEFAULT_SEED,
        symmetry_breaking: bool = True,
    ) -> None:
        if max_nodes < 1:
            raise ConfigurationError(f"max_nodes must be >= 1, got {max_nodes}")
        if max_seconds is not None and max_seconds <= 0:
            raise ConfigurationError(
                f"max_seconds must be positive, got {max_seconds}"
            )
        self.max_nodes = max_nodes
        self.max_seconds = max_seconds
        self.seed: Optional[PlacementStrategy] = (
            LocalSearchPlacement() if seed is _DEFAULT_SEED else seed
        )
        self.symmetry_breaking = symmetry_breaking
        #: Accounting of the most recent :meth:`place` call.  Written once
        #: at the end of each run; a strategy instance shared across
        #: concurrent runs keeps only the last writer's record, so treat
        #: it as provenance, not as part of the answer.
        self.last_search: Optional[BnbSearchStats] = None

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------
    def place(
        self, problem: FleetProblem, solver: PlacementSolver
    ) -> Tuple[int, ...]:
        """Return the exact optimum (or the best incumbent on budget)."""
        started = time.perf_counter()
        n_tenants, n_machines = problem.n_tenants, problem.n_machines
        classes = symmetry_classes(problem)

        # Heavy tenants branch first: their placement moves the objective
        # most, so bad subtrees are cut near the root.
        order = sorted(
            range(n_tenants),
            key=lambda index: (-problem.tenants[index].gain_factor, index),
        )

        # --- Incumbent seed -------------------------------------------
        seeded_cost: Optional[float] = None
        incumbent: Optional[Tuple[int, ...]] = None
        incumbent_cost = math.inf
        if self.seed is not None:
            with get_tracer().span(
                "bnb.seed", strategy=getattr(self.seed, "name", type(self.seed).__name__)
            ) as seed_span:
                try:
                    seed_assignment = self.seed.place(problem, solver)
                except PlacementError:
                    # Greedy construction is incomplete — its failure does
                    # not prove infeasibility, so the exact search proceeds
                    # alone.
                    seed_assignment = None
                if seed_assignment is not None:
                    seeded_cost = self._assignment_cost(
                        problem, solver, seed_assignment
                    )
                    incumbent = canonical_assignment(seed_assignment, classes)
                    incumbent_cost = seeded_cost
                    seed_span.set_attribute("seeded_cost", seeded_cost)

        # --- Admissible bound ingredients (one batch at the root) -----
        # One leaf span: the T×M solo probes fan out through the solver
        # backend, far too many for per-probe spans.
        with get_tracer().span(
            "bnb.bound", leaf=True, tenants=n_tenants, machines=n_machines
        ):
            best_alone = best_alone_costs(problem, solver)
        suffix_bound = [0.0] * (n_tenants + 1)
        for depth in range(n_tenants - 1, -1, -1):
            suffix_bound[depth] = (
                suffix_bound[depth + 1] + best_alone[order[depth]]
            )

        # --- Depth-first search with backtracking ---------------------
        state = {
            "loads": [() for _ in range(n_machines)],
            "committed": [0.0] * n_machines,
            "assignment": [-1] * n_tenants,
            "nodes": 0,
            "pruned": 0,
            "leaves": 0,
            "updates": 0,
            "incumbent": incumbent,
            "incumbent_cost": incumbent_cost,
        }
        deadline = (
            started + self.max_seconds if self.max_seconds is not None else None
        )
        budget_exhausted: Optional[str] = None
        # One leaf span covers the whole tree walk; coarse ``progress``
        # events (every ``_PROGRESS_EVERY`` nodes) keep it observable.
        search_span = get_tracer().span(
            "bnb.search", leaf=True, max_nodes=self.max_nodes
        )
        search_span.__enter__()
        state["span"] = search_span
        state["next_report"] = _PROGRESS_EVERY
        try:
            try:
                self._search(problem, solver, order, classes, suffix_bound,
                             state, depth=0, deadline=deadline)
            except _BudgetExhausted as exhausted:
                budget_exhausted = exhausted.which
            search_span.set_attributes(
                nodes=state["nodes"],
                pruned=state["pruned"],
                leaves=state["leaves"],
                incumbent_updates=state["updates"],
                budget_exhausted=budget_exhausted,
            )
        finally:
            search_span.__exit__(None, None, None)
        BNB_NODES.inc(state["nodes"])
        BNB_PRUNED.inc(state["pruned"])

        best = state["incumbent"]
        best_cost = state["incumbent_cost"]
        if best is None:
            if budget_exhausted is not None:
                raise PlacementError(
                    f"bnb-fleet exhausted its {budget_exhausted} budget "
                    f"(max_nodes={self.max_nodes}, "
                    f"max_seconds={self.max_seconds}) before finding any "
                    f"feasible assignment; raise the budget or seed the "
                    f"search"
                )
            raise PlacementError(
                f"no assignment of the {n_tenants} tenants onto the "
                f"{n_machines} machines satisfies the capacity and "
                f"degradation constraints"
            )
        self.last_search = BnbSearchStats(
            nodes_explored=state["nodes"],
            nodes_pruned=state["pruned"],
            leaves_evaluated=state["leaves"],
            incumbent_updates=state["updates"],
            full_tree_size=n_machines ** n_tenants,
            seeded_cost=seeded_cost,
            best_cost=best_cost,
            proven_optimal=budget_exhausted is None,
            budget_exhausted=budget_exhausted,
            max_nodes=self.max_nodes,
            max_seconds=self.max_seconds,
            elapsed_seconds=time.perf_counter() - started,
        )
        return best

    def _search(
        self,
        problem: FleetProblem,
        solver: PlacementSolver,
        order: Sequence[int],
        classes: Sequence[_ClassKey],
        suffix_bound: Sequence[float],
        state: Dict[str, Any],
        depth: int,
        deadline: Optional[float],
    ) -> None:
        """Expand one node: price the children, bound, recurse best-first."""
        if depth == problem.n_tenants:
            self._complete(problem, classes, state)
            return
        if deadline is not None and time.perf_counter() > deadline:
            raise _BudgetExhausted("time")

        tenant_index = order[depth]
        loads: List[Tuple[int, ...]] = state["loads"]
        committed: List[float] = state["committed"]

        # Candidate machines, one representative per (class, current
        # load) group when symmetry breaking is on.
        children: List[Tuple[int, Tuple[int, ...]]] = []
        expanded = set()
        for machine_index in range(problem.n_machines):
            if self.symmetry_breaking:
                group = (classes[machine_index], loads[machine_index])
                if group in expanded:
                    continue
                expanded.add(group)
            candidate = tuple(
                sorted(loads[machine_index] + (tenant_index,))
            )
            if solver.fits(machine_index, candidate):
                children.append((machine_index, candidate))
        if not children:
            return

        if state["nodes"] + len(children) > self.max_nodes:
            raise _BudgetExhausted("nodes")
        state["nodes"] += len(children)
        if state["nodes"] >= state["next_report"]:
            state["next_report"] = state["nodes"] + _PROGRESS_EVERY
            incumbent_cost = state["incumbent_cost"]
            state["span"].event(
                "progress",
                nodes=state["nodes"],
                pruned=state["pruned"],
                incumbent_cost=(
                    None if math.isinf(incumbent_cost) else incumbent_cost
                ),
            )
        costs = _price_candidates(solver, children)

        # Bound each child; order survivors best-bound-first so tight
        # incumbents appear early and prune the rest.  The order affects
        # only how fast the tree shrinks, never the final answer.
        total = sum(committed)
        ranked: List[Tuple[float, int, Tuple[int, ...], float]] = []
        for (machine_index, candidate), cost in zip(children, costs):
            if math.isinf(cost):
                continue  # co-location no allocation can make feasible
            bound = (
                total - committed[machine_index] + cost
                + suffix_bound[depth + 1]
            )
            if bound > state["incumbent_cost"] + _EPSILON:
                state["pruned"] += 1
                continue
            ranked.append((bound, machine_index, candidate, cost))
        ranked.sort(key=lambda entry: (entry[0], entry[1]))

        assignment: List[int] = state["assignment"]
        for bound, machine_index, candidate, cost in ranked:
            # The incumbent may have tightened since this child was
            # bounded; re-check before paying for the subtree.
            if bound > state["incumbent_cost"] + _EPSILON:
                state["pruned"] += 1
                continue
            previous_load = loads[machine_index]
            previous_cost = committed[machine_index]
            loads[machine_index] = candidate
            committed[machine_index] = cost
            assignment[tenant_index] = machine_index
            try:
                self._search(problem, solver, order, classes, suffix_bound,
                             state, depth + 1, deadline)
            finally:
                loads[machine_index] = previous_load
                committed[machine_index] = previous_cost
                assignment[tenant_index] = -1

    def _complete(
        self,
        problem: FleetProblem,
        classes: Sequence[_ClassKey],
        state: Dict[str, Any],
    ) -> None:
        """Compare a complete assignment against the incumbent.

        Cost is re-summed over occupied machines in machine order —
        exactly how ``exhaustive-fleet`` prices an assignment — so the
        two strategies compare identical floats.  Ties within the
        tolerance resolve to the lexicographically smaller canonical
        assignment, which is the representative the exhaustive scan's
        first-wins rule keeps.
        """
        state["leaves"] += 1
        committed: List[float] = state["committed"]
        loads: List[Tuple[int, ...]] = state["loads"]
        cost = sum(
            committed[machine_index]
            for machine_index in range(problem.n_machines)
            if loads[machine_index]
        )
        if cost > state["incumbent_cost"] + _EPSILON:
            return
        candidate = canonical_assignment(tuple(state["assignment"]), classes)
        if (
            cost < state["incumbent_cost"] - _EPSILON
            or state["incumbent"] is None
            or candidate < state["incumbent"]
        ):
            state["incumbent"] = candidate
            state["incumbent_cost"] = cost
            state["updates"] += 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _assignment_cost(
        problem: FleetProblem,
        solver: PlacementSolver,
        assignment: Sequence[int],
    ) -> float:
        """Total cost of a complete assignment, summed in machine order."""
        per_machine: List[List[int]] = [[] for _ in problem.machines]
        for tenant_index, machine_index in enumerate(assignment):
            per_machine[machine_index].append(tenant_index)
        occupied = [
            (machine_index, tuple(load))
            for machine_index, load in enumerate(per_machine)
            if load
        ]
        return sum(_price_candidates(solver, occupied))


def count_assignments(problem: FleetProblem) -> int:
    """``M^T`` — the full tree exhaustive enumeration would price."""
    return problem.n_machines ** problem.n_tenants


def enumerate_completions(
    problem: FleetProblem,
    solver: PlacementSolver,
    partial: Dict[int, int],
) -> List[Tuple[Tuple[int, ...], float]]:
    """Every feasible completion of a partial assignment, with its cost.

    Test scaffolding for the bound's admissibility property: the bound on
    ``partial`` must never exceed the cheapest completion's true cost.
    ``partial`` maps tenant index → machine index; unmentioned tenants
    range over every machine.
    """
    free = [
        index for index in range(problem.n_tenants) if index not in partial
    ]
    completions: List[Tuple[Tuple[int, ...], float]] = []
    for choice in itertools.product(range(problem.n_machines), repeat=len(free)):
        assignment = list(range(problem.n_tenants))
        for tenant_index, machine_index in partial.items():
            assignment[tenant_index] = machine_index
        for tenant_index, machine_index in zip(free, choice):
            assignment[tenant_index] = machine_index
        per_machine: List[List[int]] = [[] for _ in problem.machines]
        for tenant_index, machine_index in enumerate(assignment):
            per_machine[machine_index].append(tenant_index)
        keys = [
            (machine_index, tuple(load))
            for machine_index, load in enumerate(per_machine)
            if load
        ]
        if not all(solver.fits(machine_index, load) for machine_index, load in keys):
            continue
        cost = sum(_price_candidates(solver, keys))
        if not math.isinf(cost):
            completions.append((tuple(assignment), cost))
    return completions


PLACEMENTS.register(
    "bnb-fleet",
    lambda max_nodes=DEFAULT_MAX_NODES, max_seconds=None,
    symmetry_breaking=True, **_ignored: BranchAndBoundPlacement(
        max_nodes=max_nodes,
        max_seconds=max_seconds,
        symmetry_breaking=symmetry_breaking,
    ),
)
