"""The fleet placement problem: which machine should each tenant live on?

The paper's virtualization design advisor configures ``N`` database
workloads on **one** physical machine.  A production fleet has many
machines, so a consolidation decision really has two levels:

1. *Placement* — choose, for every tenant, the machine whose VM will host
   it, subject to each machine's capacity (CPU work-rate and physical
   memory the tenants reserve).
2. *Division* — on every machine, divide the machine's CPU and memory
   among the tenants placed there; this is exactly the paper's problem and
   is delegated unchanged to :class:`repro.api.Advisor`.

This module defines the data model of level 1:

* :class:`Machine` — one physical host with its capacity, convertible to
  the :class:`~repro.virt.machine.PhysicalMachine` the per-machine advisor
  calibrates against.
* :class:`FleetTenant` — one database workload, described declaratively by
  a :class:`~repro.api.scenario.TenantSpec` plus the capacity it reserves.
* :class:`FleetProblem` — tenants × machines, JSON round-trippable
  (``from_dict`` / ``from_json`` / ``to_dict`` / ``to_json``) in the same
  style as :class:`~repro.api.Scenario`, so whole fleet scenarios can live
  in files or cross a service boundary.
* :class:`Placement` — an immutable tenant → machine assignment with
  capacity accounting.

Everything here is plain data; solving happens in
:mod:`repro.fleet.advisor` and :mod:`repro.fleet.strategies`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

# FleetProblem accepts the same calibration overrides as Scenario, so the
# key whitelist is shared rather than duplicated.
from ..api.scenario import _CALIBRATION_KEYS, TenantSpec, _normalize_options
from ..core.problem import CPU, MEMORY, RESOURCE_NAMES
from ..exceptions import ConfigurationError, PlacementError
from ..virt.machine import PhysicalMachine

#: Default memory reservation per tenant, in MB — the paper's fixed 512 MB
#: per-VM grant, reused as the placement-level footprint of a tenant that
#: does not declare one.
DEFAULT_MEMORY_DEMAND_MB = 512.0


@dataclass(frozen=True)
class Machine:
    """One physical host of the fleet, with its placement-level capacity.

    Attributes:
        name: unique machine identifier within the fleet.
        cpu_work_units_per_second: CPU work-rate of the host (the same unit
            as :class:`~repro.virt.machine.PhysicalMachine`); doubles as
            the machine's CPU *capacity*: the CPU demands of the tenants
            placed on the machine must not exceed it.
        memory_mb: physical memory of the host; the memory demands of the
            tenants placed on the machine must not exceed it.
        cpu_cores: number of cores (informational, forwarded to the
            physical-machine model).
        max_tenants: optional hard cap on the number of tenants the machine
            may host (``None`` = limited only by capacity and by the
            per-machine advisor's minimum share).
    """

    name: str
    cpu_work_units_per_second: float = 2_000_000.0
    memory_mb: float = 8192.0
    cpu_cores: int = 4
    max_tenants: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("machine name must be non-empty")
        if self.cpu_work_units_per_second <= 0:
            raise ConfigurationError(
                f"machine {self.name!r}: cpu_work_units_per_second must be "
                f"positive, got {self.cpu_work_units_per_second}"
            )
        if self.memory_mb <= 0:
            raise ConfigurationError(
                f"machine {self.name!r}: memory_mb must be positive, "
                f"got {self.memory_mb}"
            )
        if self.cpu_cores <= 0:
            raise ConfigurationError(
                f"machine {self.name!r}: cpu_cores must be positive, "
                f"got {self.cpu_cores}"
            )
        if self.max_tenants is not None and self.max_tenants <= 0:
            raise ConfigurationError(
                f"machine {self.name!r}: max_tenants must be positive, "
                f"got {self.max_tenants}"
            )

    @property
    def hardware_key(self) -> Tuple[float, float, int]:
        """The machine's hardware signature (capacity without the name).

        Machines with equal hardware keys are physically interchangeable,
        so the fleet advisor calibrates each distinct key exactly once and
        shares the calibration (and therefore the cost cache) across all
        machines of that shape.
        """
        return (self.cpu_work_units_per_second, self.memory_mb, self.cpu_cores)

    def physical(self) -> PhysicalMachine:
        """The :class:`~repro.virt.machine.PhysicalMachine` model of this host."""
        return PhysicalMachine(
            name=self.name,
            cpu_work_units_per_second=self.cpu_work_units_per_second,
            memory_mb=self.memory_mb,
            cpu_cores=self.cpu_cores,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Machine":
        """Build a machine from a plain dictionary."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown machine option(s) {', '.join(map(repr, unknown))}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        if "name" not in data:
            raise ConfigurationError(
                f"machine spec {dict(data)!r} is missing the required 'name' key"
            )
        return cls(**dict(data))

    def to_dict(self) -> Dict[str, Any]:
        """The machine as a JSON-safe dictionary (round-trips via from_dict)."""
        return {
            "name": self.name,
            "cpu_work_units_per_second": self.cpu_work_units_per_second,
            "memory_mb": self.memory_mb,
            "cpu_cores": self.cpu_cores,
            "max_tenants": self.max_tenants,
        }


@dataclass(frozen=True)
class FleetTenant:
    """One tenant of the fleet: a declarative workload plus its footprint.

    Attributes:
        spec: the workload description (engine, statements, QoS) — the same
            :class:`~repro.api.scenario.TenantSpec` the single-machine
            :class:`~repro.api.Scenario` uses, so per-machine problems can
            be materialized through the existing builder machinery.
        cpu_demand: CPU work units per second the tenant reserves at
            placement time (0 = no reservation; the per-machine advisor
            still divides the actual CPU among co-located tenants).
        memory_demand_mb: physical memory (MB) the tenant's VM reserves;
            the sum over a machine's tenants must fit its ``memory_mb``.
    """

    spec: TenantSpec
    cpu_demand: float = 0.0
    memory_demand_mb: float = DEFAULT_MEMORY_DEMAND_MB

    def __post_init__(self) -> None:
        if not isinstance(self.spec, TenantSpec):
            object.__setattr__(self, "spec", TenantSpec.from_dict(self.spec))
        if self.cpu_demand < 0:
            raise ConfigurationError(
                f"tenant {self.spec.name!r}: cpu_demand must not be negative, "
                f"got {self.cpu_demand}"
            )
        if self.memory_demand_mb <= 0:
            raise ConfigurationError(
                f"tenant {self.spec.name!r}: memory_demand_mb must be "
                f"positive, got {self.memory_demand_mb}"
            )

    @property
    def name(self) -> str:
        """Name of the underlying workload spec."""
        return self.spec.name

    @property
    def gain_factor(self) -> float:
        """The tenant's benefit gain factor ``G_i`` (QoS weight)."""
        return self.spec.gain_factor

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetTenant":
        """Build a fleet tenant from a plain dictionary.

        The dictionary is the tenant's :class:`TenantSpec` fields plus the
        optional ``cpu_demand`` / ``memory_demand_mb`` footprint, i.e. a
        flat structure convenient to write by hand::

            {"name": "oltp", "engine": "db2", "statements": [["q18", 5.0]],
             "memory_demand_mb": 1024}
        """
        data = dict(data)
        cpu_demand = data.pop("cpu_demand", 0.0)
        memory_demand_mb = data.pop("memory_demand_mb", DEFAULT_MEMORY_DEMAND_MB)
        return cls(
            spec=TenantSpec.from_dict(data),
            cpu_demand=cpu_demand,
            memory_demand_mb=memory_demand_mb,
        )

    def to_dict(self) -> Dict[str, Any]:
        """The tenant as a JSON-safe dictionary (round-trips via from_dict)."""
        document = self.spec.to_dict()
        document["cpu_demand"] = self.cpu_demand
        document["memory_demand_mb"] = self.memory_demand_mb
        return document


TenantLike = Union[FleetTenant, TenantSpec, Mapping[str, Any]]
MachineLike = Union[Machine, Mapping[str, Any]]


def _coerce_tenant(tenant: TenantLike) -> FleetTenant:
    """Accept a FleetTenant, a bare TenantSpec, or a mapping."""
    if isinstance(tenant, FleetTenant):
        return tenant
    if isinstance(tenant, TenantSpec):
        return FleetTenant(spec=tenant)
    return FleetTenant.from_dict(tenant)


def _coerce_machine(machine: MachineLike) -> Machine:
    """Accept a Machine or a mapping."""
    if isinstance(machine, Machine):
        return machine
    return Machine.from_dict(machine)


@dataclass(frozen=True)
class FleetProblem:
    """A complete fleet consolidation problem: tenants × machines.

    Attributes:
        tenants: the workloads to place (each with its capacity footprint).
        machines: the candidate hosts.
        name: fleet identifier (used in reports and filenames).
        resources: resources each per-machine advisor controls, as in
            :class:`~repro.core.problem.VirtualizationDesignProblem`.
        fixed_memory_fraction: per-VM memory fraction when memory is not a
            controlled resource.
        calibration: optional calibration-settings overrides applied when
            engines are calibrated on the fleet's machines (same keys as
            :class:`~repro.api.Scenario`).
    """

    tenants: Tuple[FleetTenant, ...]
    machines: Tuple[Machine, ...]
    name: str = "fleet"
    resources: Tuple[str, ...] = (CPU, MEMORY)
    fixed_memory_fraction: float = 0.0625
    calibration: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        tenants = tuple(_coerce_tenant(tenant) for tenant in self.tenants)
        machines = tuple(_coerce_machine(machine) for machine in self.machines)
        if not tenants:
            raise ConfigurationError("a fleet problem needs at least one tenant")
        if not machines:
            raise ConfigurationError("a fleet problem needs at least one machine")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ConfigurationError(
                f"duplicate tenant name(s): {', '.join(map(repr, duplicates))}"
            )
        machine_names = [machine.name for machine in machines]
        if len(set(machine_names)) != len(machine_names):
            duplicates = sorted(
                {name for name in machine_names if machine_names.count(name) > 1}
            )
            raise ConfigurationError(
                f"duplicate machine name(s): {', '.join(map(repr, duplicates))}"
            )
        for resource in self.resources:
            if resource not in RESOURCE_NAMES:
                raise ConfigurationError(f"unknown resource {resource!r}")
        if not self.resources:
            raise ConfigurationError("at least one resource must be controlled")
        object.__setattr__(self, "tenants", tenants)
        object.__setattr__(self, "machines", machines)
        object.__setattr__(self, "resources", tuple(self.resources))
        object.__setattr__(
            self,
            "calibration",
            _normalize_options(self.calibration, _CALIBRATION_KEYS, "calibration"),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_tenants(self) -> int:
        """Number of tenants to place."""
        return len(self.tenants)

    @property
    def n_machines(self) -> int:
        """Number of candidate machines."""
        return len(self.machines)

    def tenant(self, index: int) -> FleetTenant:
        """The ``index``-th tenant."""
        return self.tenants[index]

    def machine(self, index: int) -> Machine:
        """The ``index``-th machine."""
        return self.machines[index]

    def tenant_names(self) -> List[str]:
        """Tenant names in problem order."""
        return [tenant.name for tenant in self.tenants]

    def machine_names(self) -> List[str]:
        """Machine names in problem order."""
        return [machine.name for machine in self.machines]

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    def fits(
        self,
        machine_index: int,
        tenant_indices: Sequence[int],
        max_tenants: Optional[int] = None,
    ) -> bool:
        """Whether a machine can host a tenant set within its capacities.

        ``max_tenants`` optionally tightens the machine's own tenant cap
        (the fleet advisor passes the bound implied by the per-machine
        enumerator's minimum share: a machine cannot host more tenants than
        ``1 / min_share`` VMs with a non-zero allocation each).
        """
        machine = self.machines[machine_index]
        count = len(tenant_indices)
        cap = machine.max_tenants
        if max_tenants is not None:
            cap = max_tenants if cap is None else min(cap, max_tenants)
        if cap is not None and count > cap:
            return False
        cpu = sum(self.tenants[i].cpu_demand for i in tenant_indices)
        memory = sum(self.tenants[i].memory_demand_mb for i in tenant_indices)
        return (
            cpu <= machine.cpu_work_units_per_second + 1e-9
            and memory <= machine.memory_mb + 1e-9
        )

    def validate_placement(
        self,
        assignment: Sequence[int],
        max_tenants: Optional[int] = None,
    ) -> None:
        """Raise :class:`~repro.exceptions.PlacementError` if infeasible."""
        if len(assignment) != self.n_tenants:
            raise PlacementError(
                f"expected {self.n_tenants} assignments, got {len(assignment)}"
            )
        per_machine: Dict[int, List[int]] = {}
        for tenant_index, machine_index in enumerate(assignment):
            if not 0 <= machine_index < self.n_machines:
                raise PlacementError(
                    f"tenant {self.tenants[tenant_index].name!r} assigned to "
                    f"machine index {machine_index}, which does not exist"
                )
            per_machine.setdefault(machine_index, []).append(tenant_index)
        for machine_index, tenant_indices in per_machine.items():
            if not self.fits(machine_index, tenant_indices, max_tenants):
                machine = self.machines[machine_index]
                names = [self.tenants[i].name for i in tenant_indices]
                raise PlacementError(
                    f"machine {machine.name!r} cannot host "
                    f"{', '.join(map(repr, names))}: capacity exceeded"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetProblem":
        """Build a fleet problem from a plain dictionary."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fleet option(s) {', '.join(map(repr, unknown))}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        return cls(
            tenants=tuple(data.get("tenants", ())),
            machines=tuple(data.get("machines", ())),
            name=data.get("name", "fleet"),
            resources=tuple(data.get("resources", (CPU, MEMORY))),
            fixed_memory_fraction=data.get("fixed_memory_fraction", 0.0625),
            calibration=data.get("calibration"),
        )

    @classmethod
    def from_json(cls, document: Union[str, bytes]) -> "FleetProblem":
        """Build a fleet problem from a JSON document."""
        return cls.from_dict(json.loads(document))

    def to_dict(self) -> Dict[str, Any]:
        """The problem as a JSON-safe dictionary (round-trips via from_dict)."""
        calibration = None
        if self.calibration is not None:
            calibration = {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in self.calibration.items()
            }
        return {
            "name": self.name,
            "resources": list(self.resources),
            "fixed_memory_fraction": self.fixed_memory_fraction,
            "calibration": calibration,
            "machines": [machine.to_dict() for machine in self.machines],
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The problem as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def with_machines(self, machines: Sequence[MachineLike]) -> "FleetProblem":
        """A copy of the problem over a different machine pool."""
        return replace(self, machines=tuple(machines))

    def with_tenants(self, tenants: Sequence[TenantLike]) -> "FleetProblem":
        """A copy of the problem with a different tenant list."""
        return replace(self, tenants=tuple(tenants))


@dataclass(frozen=True)
class Placement:
    """An immutable tenant → machine assignment for one fleet problem.

    Attributes:
        problem: the fleet problem the assignment solves.
        assignment: machine index per tenant, in tenant order.
        strategy: name of the placement strategy that produced it.
    """

    problem: FleetProblem
    assignment: Tuple[int, ...]
    strategy: str = "unknown"

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", tuple(self.assignment))
        self.problem.validate_placement(self.assignment)

    def machine_of(self, tenant_index: int) -> Machine:
        """The machine hosting one tenant."""
        return self.problem.machines[self.assignment[tenant_index]]

    def tenants_on(self, machine_index: int) -> Tuple[int, ...]:
        """Tenant indices placed on one machine, in tenant order."""
        return tuple(
            tenant_index
            for tenant_index, assigned in enumerate(self.assignment)
            if assigned == machine_index
        )

    def as_mapping(self) -> Dict[str, str]:
        """The placement as a tenant-name → machine-name mapping."""
        return {
            tenant.name: self.problem.machines[machine_index].name
            for tenant, machine_index in zip(self.problem.tenants, self.assignment)
        }

    @property
    def machines_used(self) -> int:
        """Number of machines hosting at least one tenant."""
        return len(set(self.assignment))
