"""Pluggable tenant-placement strategies for the fleet advisor.

Placement decides *which machine* hosts each tenant; the per-machine
resource split is always delegated to :class:`repro.api.Advisor`.  The
strategies live behind the same open :class:`~repro.api.strategies.StrategyRegistry`
pattern as the enumerator / cost-function / refinement registries, so
downstream code can register its own placement policy and select it by
name on :class:`~repro.fleet.advisor.FleetAdvisor`:

* ``"round-robin"`` — cycle tenants across machines in order, skipping
  machines that are out of capacity.  ``O(N·M)``; the fairness baseline
  the paper-style evaluation compares against.
* ``"first-fit"`` — classic bin-packing baseline: each tenant goes to the
  first machine (in machine order) with room.  ``O(N·M)``; packs tightly
  but ignores cost.
* ``"greedy-cost"`` — for each tenant, tentatively co-locate it with every
  machine's current tenants, re-solve that machine's division with the
  per-machine advisor, and commit to the machine whose *marginal*
  gain-weighted cost increase is smallest.  ``O(N·M)`` advisor solves —
  but each solve builds its per-tenant cost tables through the batched
  :meth:`~repro.core.cost_estimator.CostFunction.cost_many` path against
  the fleet's shared :class:`~repro.api.cache.CostCache`, so the optimizer
  work for one (tenant, machine-shape) pair is paid once across all
  probes, machines of the same hardware, and repeated recommendations.

A strategy only needs ``place(problem, solver)``; the ``solver`` (a
:class:`PlacementSolver`) answers capacity questions and prices candidate
co-locations, keeping strategies free of calibration and advisor plumbing.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..api.strategies import StrategyRegistry
from ..exceptions import ConfigurationError, PlacementError
from ..telemetry.trace import get_tracer
from .problem import FleetProblem

#: How many future tenants' probe rounds the speculative mode pre-prices.
#: With M machines per round, lookahead L keeps ~M·(L+1) probes in flight;
#: 2 saturates the default thread width (4–8 jobs) on typical fleets.
DEFAULT_LOOKAHEAD = 2


@runtime_checkable
class PlacementSolver(Protocol):
    """What a placement strategy may ask of the fleet advisor.

    Implemented by the fleet advisor's internal solver; exposed as a
    protocol so placement strategies (including user-registered ones)
    depend only on this narrow surface.
    """

    def fits(self, machine_index: int, tenant_indices: Tuple[int, ...]) -> bool:
        """Whether the machine can host the tenant set (capacity + shares)."""
        ...

    def machine_cost(
        self, machine_index: int, tenant_indices: Tuple[int, ...]
    ) -> float:
        """Gain-weighted cost of a machine after the advisor divides it."""
        ...

    def machine_costs(
        self, candidates: "Sequence[Tuple[int, Tuple[int, ...]]]"
    ) -> List[float]:
        """Price several candidate co-locations at once.

        The fleet advisor's solver fans the batch out on the run's
        solver-execution backend; results align with ``candidates``.
        Strategy helpers fall back to :meth:`machine_cost` loops when a
        custom solver does not provide this method.
        """
        ...


@runtime_checkable
class PlacementStrategy(Protocol):
    """Assigns every tenant of a fleet problem to a machine."""

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Return the machine index chosen for each tenant (tenant order)."""
        ...


#: Registry of placement strategies (``placement=`` on the FleetAdvisor).
PLACEMENTS = StrategyRegistry("placement")


@dataclass(frozen=True)
class PlacementRunStats:
    """Minimal search accounting for the heuristic placement strategies.

    The greedy family's counterpart to the exact solver's
    ``BnbSearchStats``: strategies store one on ``last_search`` after
    every ``place()`` call, and the fleet advisor surfaces its
    ``to_dict()`` as the report's ``placement_provenance`` — so traces
    and reports agree on what ran, whichever strategy placed the fleet.

    ``probes`` counts candidate co-locations the strategy asked the
    solver to price (speculative submissions included — on the lazy
    serial handle a mispredicted probe may never execute, but it was
    part of this run's search).
    """

    strategy: str
    probes: int
    wall_time_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "probes": self.probes,
            "wall_time_seconds": self.wall_time_seconds,
        }


def _unplaceable(
    problem: FleetProblem, tenant_index: int, qos_blocked: bool = False
) -> PlacementError:
    """A uniform error for a tenant no machine can currently host.

    ``qos_blocked`` distinguishes the two failure modes a cost-aware
    strategy can hit: every machine out of capacity, versus machines with
    room whose co-locations no allocation can make feasible (degradation
    limits) — so the error points the operator at the actual blocker.
    """
    tenant = problem.tenants[tenant_index]
    if qos_blocked:
        return PlacementError(
            f"no machine can feasibly host tenant {tenant.name!r}: machines "
            f"with spare capacity exist, but every candidate co-location "
            f"violates the tenants' degradation limits"
        )
    return PlacementError(
        f"no machine can host tenant {tenant.name!r} "
        f"(cpu_demand={tenant.cpu_demand:g}, "
        f"memory_demand_mb={tenant.memory_demand_mb:g}) "
        f"given the tenants already placed"
    )


def _place_in_machine_order(
    problem: FleetProblem, solver: PlacementSolver, start_of
) -> Tuple[int, ...]:
    """Place each tenant on the first fitting machine from a start index.

    Shared body of the two cost-blind baselines; ``start_of(tenant_index)``
    chooses where the scan begins (always 0 for first-fit, rotating for
    round-robin).
    """
    loads: List[List[int]] = [[] for _ in problem.machines]
    assignment: List[int] = []
    for tenant_index in range(problem.n_tenants):
        start = start_of(tenant_index)
        for offset in range(problem.n_machines):
            machine_index = (start + offset) % problem.n_machines
            candidate = tuple(loads[machine_index] + [tenant_index])
            if solver.fits(machine_index, candidate):
                loads[machine_index].append(tenant_index)
                assignment.append(machine_index)
                break
        else:
            raise _unplaceable(problem, tenant_index)
    return tuple(assignment)


class RoundRobinPlacement:
    """Cycle tenants across machines in order, skipping full machines.

    The fairness baseline: ignores cost entirely and spreads tenants as
    evenly as the capacities allow, the way a naive load balancer would.
    """

    name = "round-robin"

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Assign tenant ``i`` to machine ``i mod M`` (next fit with room)."""
        return _place_in_machine_order(
            problem, solver, lambda tenant_index: tenant_index % problem.n_machines
        )


class FirstFitPlacement:
    """Place each tenant on the first machine (machine order) with room.

    The classic bin-packing baseline: packs machines tightly in order,
    which minimizes machines used but concentrates load (and therefore
    cost) on the low-index machines.
    """

    name = "first-fit"

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Assign each tenant to the lowest-index machine that fits it."""
        return _place_in_machine_order(problem, solver, lambda tenant_index: 0)


def greedy_assign(
    problem: FleetProblem,
    solver: PlacementSolver,
    order: List[int],
    assignment: List[Optional[int]],
    loads: List[List[int]],
    current_cost: List[float],
    speculate: bool = False,
    lookahead: int = DEFAULT_LOOKAHEAD,
    run_stats: Optional[Dict[str, Any]] = None,
) -> Tuple[int, ...]:
    """Greedily commit each tenant in ``order`` to its cheapest machine.

    The shared body of :class:`GreedyCostPlacement` and the fleet
    advisor's incremental re-placement: ``assignment`` / ``loads`` /
    ``current_cost`` may already contain committed (pinned) tenants, and
    every tenant in ``order`` is assigned to the machine whose *marginal*
    gain-weighted cost increase is smallest (ties break toward the
    lower-index machine).  All three state arguments are mutated in place;
    the completed assignment is returned.

    With ``speculate=True`` (and a solver offering ``submit_probe``) the
    per-tenant probe rounds are *pipelined*: while the current tenant's
    probes resolve, probes for the next ``lookahead`` tenants are already
    submitted against the loads as they stand — the prediction that the
    current commit lands elsewhere.  Predictions are validated on commit
    simply by key lookup: a future round whose machine was untouched finds
    its probe already priced; a misprediction's key never matches again
    and the stale probe is discarded (on the lazy serial handle it never
    even executes).  Because every probe's value is a pure function of its
    (machine, tenant set) key — allocation quantization plus the fleet
    solve-memo — extra speculative probes can never change the chosen
    assignment, only the wall-clock.
    """
    batch_costs = getattr(solver, "machine_costs", None)
    submit_probe = getattr(solver, "submit_probe", None) if speculate else None
    probes = 0
    #: In-flight speculative probes keyed by (machine, candidate tuple).
    pending: Dict[Tuple[int, Tuple[int, ...]], Any] = {}
    # One leaf span wraps the whole assignment loop: probe rounds are far
    # too hot for per-probe spans, so commits are recorded as events.
    span = get_tracer().span(
        "greedy.assign", leaf=True, tenants=len(order), speculate=bool(submit_probe)
    )
    span.__enter__()
    try:
        return _greedy_assign_body(
            problem,
            solver,
            order,
            assignment,
            loads,
            current_cost,
            lookahead,
            batch_costs,
            submit_probe,
            pending,
            span,
            run_stats,
        )
    finally:
        span.__exit__(None, None, None)


def _greedy_assign_body(
    problem: FleetProblem,
    solver: PlacementSolver,
    order: List[int],
    assignment: List[Optional[int]],
    loads: List[List[int]],
    current_cost: List[float],
    lookahead: int,
    batch_costs: Any,
    submit_probe: Any,
    pending: Dict[Tuple[int, Tuple[int, ...]], Any],
    span: Any,
    run_stats: Optional[Dict[str, Any]],
) -> Tuple[int, ...]:
    probes = 0
    for position, tenant_index in enumerate(order):
        # The candidate machines of one tenant are priced as a batch: on a
        # parallel solver backend the probes fan out, and because costs
        # come back aligned with the (ascending-machine-index) candidate
        # list, the selection below — including the 1e-12 tie-break toward
        # the lower-index machine — is identical to the serial loop's.
        fitting: List[Tuple[int, Tuple[int, ...]]] = []
        for machine_index in range(problem.n_machines):
            candidate = tuple(loads[machine_index] + [tenant_index])
            if solver.fits(machine_index, candidate):
                fitting.append((machine_index, candidate))
        if submit_probe is not None:
            for key in fitting:
                if key not in pending:
                    pending[key] = submit_probe(*key)
                    probes += 1
            # Speculation: submit the next rounds' probes before blocking
            # on this round's, predicting that the machines they target
            # are left untouched by the intervening commits.
            for ahead in order[position + 1 : position + 1 + max(0, lookahead)]:
                for machine_index in range(problem.n_machines):
                    speculative = tuple(loads[machine_index] + [ahead])
                    key = (machine_index, speculative)
                    if key not in pending and solver.fits(machine_index, speculative):
                        pending[key] = submit_probe(machine_index, speculative)
                        probes += 1
            costs = [pending.pop(key).result() for key in fitting]
        elif batch_costs is not None:
            costs = batch_costs(fitting)
            probes += len(fitting)
        else:
            costs = [
                solver.machine_cost(machine_index, candidate)
                for machine_index, candidate in fitting
            ]
            probes += len(fitting)
        best_machine: Optional[int] = None
        best_increase = float("inf")
        best_cost = 0.0
        for (machine_index, _candidate), cost in zip(fitting, costs):
            increase = cost - current_cost[machine_index]
            if increase < best_increase - 1e-12:
                best_machine = machine_index
                best_increase = increase
                best_cost = cost
        if best_machine is None:
            raise _unplaceable(problem, tenant_index, qos_blocked=bool(fitting))
        loads[best_machine].append(tenant_index)
        current_cost[best_machine] = best_cost
        assignment[tenant_index] = best_machine
        span.event("commit", tenant=tenant_index, machine=best_machine)
    span.set_attribute("probes", probes)
    if run_stats is not None:
        run_stats["probes"] = run_stats.get("probes", 0) + probes
    return tuple(assignment)  # type: ignore[arg-type]


class GreedyCostPlacement:
    """Place each tenant where the marginal weighted-cost increase is least.

    For tenant ``t`` and every machine ``m`` with room, the strategy prices
    the co-location by asking the per-machine advisor to re-divide ``m``
    with ``t`` added — ``Δ(m, t) = cost(m, S_m ∪ {t}) − cost(m, S_m)`` where
    costs are the gain-weighted objective ``Σᵢ Gᵢ·Costᵢ`` — and commits
    ``t`` to the machine minimizing ``Δ``.  Ties break toward the
    lower-index machine, so the result is deterministic.

    Tenants are considered in descending gain factor (then problem order):
    heavyweight tenants choose machines while the fleet is still empty,
    which is the standard decreasing-first heuristic from bin packing
    transplanted to a cost objective.

    ``speculate=True`` (registered as ``"greedy-cost-spec"``) pipelines the
    per-tenant probe rounds across the solver backend — see
    :func:`greedy_assign` — choosing the *identical* assignment faster on
    parallel backends.
    """

    name = "greedy-cost"

    def __init__(
        self,
        sort_by_gain: bool = True,
        speculate: bool = False,
        lookahead: int = DEFAULT_LOOKAHEAD,
    ) -> None:
        self.sort_by_gain = sort_by_gain
        self.speculate = speculate
        self.lookahead = lookahead
        if speculate:
            self.name = "greedy-cost-spec"
        #: Accounting for the most recent ``place()`` call, surfaced by the
        #: fleet advisor as the report's ``placement_provenance``.
        self.last_search: Optional[PlacementRunStats] = None

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Greedily commit each tenant to its cheapest feasible machine."""
        order = list(range(problem.n_tenants))
        if self.sort_by_gain:
            order.sort(key=lambda index: (-problem.tenants[index].gain_factor, index))
        run_stats: Dict[str, Any] = {}
        started = time.perf_counter()
        try:
            return greedy_assign(
                problem,
                solver,
                order,
                assignment=[None] * problem.n_tenants,
                loads=[[] for _ in problem.machines],
                current_cost=[0.0 for _ in problem.machines],
                speculate=self.speculate,
                lookahead=self.lookahead,
                run_stats=run_stats,
            )
        finally:
            self.last_search = PlacementRunStats(
                strategy=self.name,
                probes=run_stats.get("probes", 0),
                wall_time_seconds=time.perf_counter() - started,
            )


def _price_candidates(
    solver: PlacementSolver, candidates: Sequence[Tuple[int, Tuple[int, ...]]]
) -> List[float]:
    """Batch-price candidates, falling back to a machine_cost loop."""
    batch_costs = getattr(solver, "machine_costs", None)
    if batch_costs is not None:
        return batch_costs(candidates)
    return [
        solver.machine_cost(machine_index, candidate)
        for machine_index, candidate in candidates
    ]


def improve_assignment(
    problem: FleetProblem,
    solver: PlacementSolver,
    assignment: Sequence[int],
    max_rounds: int = 12,
    run_stats: Optional[Dict[str, Any]] = None,
) -> Tuple[int, ...]:
    """Local search over an assignment: moves and swaps to a fixed point.

    Steepest-descent rounds over the two classic neighborhoods — move one
    tenant to another machine, swap two tenants between machines — applied
    while any candidate strictly lowers the fleet's total gain-weighted
    cost (by more than ``1e-9``, so the result is never costlier than the
    input).  Each round prices every distinct (machine, tenant set) it
    needs in one batch; against the fleet advisor's solve-memo most of
    those are repeat sets from the greedy construction or earlier rounds,
    so iterations are nearly free.  Deterministic: candidates are
    enumerated in a fixed order and a strictly-better delta is required to
    displace the incumbent, so ties keep the earliest candidate.
    """
    # One leaf span for the whole search; per-round progress is recorded
    # as events (rounds re-price mostly-memoized sets, far too hot for
    # per-candidate spans).
    span = get_tracer().span(
        "placement.improve",
        leaf=True,
        tenants=problem.n_tenants,
        max_rounds=max_rounds,
    )
    span.__enter__()
    try:
        return _improve_assignment_body(
            problem, solver, assignment, max_rounds, span, run_stats
        )
    finally:
        span.__exit__(None, None, None)


def _improve_assignment_body(
    problem: FleetProblem,
    solver: PlacementSolver,
    assignment: Sequence[int],
    max_rounds: int,
    span: Any,
    run_stats: Optional[Dict[str, Any]],
) -> Tuple[int, ...]:
    probes = 0
    rounds = 0
    assignment = list(assignment)
    loads: List[List[int]] = [[] for _ in problem.machines]
    for tenant_index, machine_index in enumerate(assignment):
        loads[machine_index].append(tenant_index)
    for load in loads:
        load.sort()

    occupied = [
        (machine_index, tuple(load))
        for machine_index, load in enumerate(loads)
        if load
    ]
    current: Dict[int, float] = dict(
        zip(
            (machine_index for machine_index, _ in occupied),
            _price_candidates(solver, occupied),
        )
    )
    probes += len(occupied)

    def machine_cost_now(machine_index: int) -> float:
        return current.get(machine_index, 0.0)

    for _ in range(max_rounds):
        # Enumerate the neighborhood, collecting every distinct tenant set
        # that needs a price.  A candidate is (the two machines it touches,
        # their new tenant sets); removal sets always fit (capacity checks
        # are monotone), additions are checked.
        moves: List[Tuple[Any, ...]] = []
        needed: List[Tuple[int, Tuple[int, ...]]] = []
        seen = set()

        def need(machine_index: int, tenant_set: Tuple[int, ...]) -> None:
            key = (machine_index, tenant_set)
            if tenant_set and key not in seen:
                seen.add(key)
                needed.append(key)

        for tenant_index in range(problem.n_tenants):
            source = assignment[tenant_index]
            rest = tuple(i for i in loads[source] if i != tenant_index)
            for target in range(problem.n_machines):
                if target == source:
                    continue
                joined = tuple(sorted(loads[target] + [tenant_index]))
                if not solver.fits(target, joined):
                    continue
                moves.append(("move", tenant_index, source, target, rest, joined))
                need(source, rest)
                need(target, joined)
        for tenant_index, other_index in itertools.combinations(
            range(problem.n_tenants), 2
        ):
            source = assignment[tenant_index]
            target = assignment[other_index]
            if source == target:
                continue
            new_source = tuple(
                sorted([i for i in loads[source] if i != tenant_index] + [other_index])
            )
            new_target = tuple(
                sorted([i for i in loads[target] if i != other_index] + [tenant_index])
            )
            if not (solver.fits(source, new_source) and solver.fits(target, new_target)):
                continue
            moves.append(
                (
                    "swap",
                    (tenant_index, other_index),
                    source,
                    target,
                    new_source,
                    new_target,
                )
            )
            need(source, new_source)
            need(target, new_target)

        if not moves:
            break
        priced = dict(zip(needed, _price_candidates(solver, needed)))
        probes += len(needed)
        rounds += 1
        span.event("round", candidates=len(moves), priced=len(needed))

        def cost_of(machine_index: int, tenant_set: Tuple[int, ...]) -> float:
            return priced[(machine_index, tenant_set)] if tenant_set else 0.0

        best: Optional[Tuple[Any, ...]] = None
        best_delta = -1e-9
        for move in moves:
            _kind, _tenant, source, target, new_source, new_target = move
            delta = (
                cost_of(source, new_source)
                + cost_of(target, new_target)
                - machine_cost_now(source)
                - machine_cost_now(target)
            )
            if delta < best_delta - 1e-12:
                best = move
                best_delta = delta
        if best is None:
            break

        kind, who, source, target, new_source, new_target = best
        loads[source] = list(new_source)
        loads[target] = list(new_target)
        for machine_index, tenant_set in ((source, new_source), (target, new_target)):
            if tenant_set:
                current[machine_index] = priced[(machine_index, tenant_set)]
            else:
                current.pop(machine_index, None)
        if kind == "move":
            assignment[who] = target
        else:  # swap: `who` is the (source-side, target-side) tenant pair
            source_tenant, target_tenant = who
            assignment[source_tenant] = target
            assignment[target_tenant] = source
    span.set_attributes(probes=probes, rounds=rounds)
    if run_stats is not None:
        run_stats["probes"] = run_stats.get("probes", 0) + probes
    return tuple(assignment)


class LocalSearchPlacement:
    """Greedy-cost placement plus a nearly-free local-search improver.

    Runs :class:`GreedyCostPlacement` and then
    :func:`improve_assignment`: single-tenant moves and pairwise swaps,
    iterated to a fixed point or the ``max_rounds`` budget.  Because every
    candidate re-prices only the two machines it touches — and those
    tenant sets are mostly ones the greedy construction (or an earlier
    round) already solved — the improvement rounds run almost entirely
    from the fleet advisor's solve-memo.  The result is never costlier
    than plain greedy-cost (only strictly-improving candidates are
    applied), and it closes a measured share of the greedy-vs-exact gap
    (see ``benchmarks/test_fleet_placement.py``).
    """

    name = "greedy-cost+ls"

    def __init__(
        self,
        max_rounds: int = 12,
        sort_by_gain: bool = True,
        speculate: bool = False,
        lookahead: int = DEFAULT_LOOKAHEAD,
        base: Optional[PlacementStrategy] = None,
    ) -> None:
        if max_rounds < 0:
            raise ConfigurationError(
                f"max_rounds must be >= 0, got {max_rounds}"
            )
        self.max_rounds = max_rounds
        self.base = (
            base
            if base is not None
            else GreedyCostPlacement(
                sort_by_gain=sort_by_gain, speculate=speculate, lookahead=lookahead
            )
        )
        #: Accounting for the most recent ``place()`` call (construction
        #: and improvement probes combined).
        self.last_search: Optional[PlacementRunStats] = None

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Construct greedily, then improve to a fixed point or budget."""
        run_stats: Dict[str, Any] = {}
        started = time.perf_counter()
        try:
            assignment = self.base.place(problem, solver)
            base_search = getattr(self.base, "last_search", None)
            if base_search is not None:
                run_stats["probes"] = base_search.probes
            return improve_assignment(
                problem,
                solver,
                assignment,
                max_rounds=self.max_rounds,
                run_stats=run_stats,
            )
        finally:
            self.last_search = PlacementRunStats(
                strategy=self.name,
                probes=run_stats.get("probes", 0),
                wall_time_seconds=time.perf_counter() - started,
            )


class ExhaustiveFleetPlacement:
    """Brute-force over every assignment — the exact small-fleet baseline.

    The fleet analogue of the per-machine ``"exhaustive"`` enumerator:
    enumerate all ``M^T`` tenant→machine assignments, price the feasible
    ones, and return the cheapest (ties break toward the lexicographically
    first assignment, so the result is deterministic).  Guarded by
    ``max_assignments`` because the space is exponential — this exists to
    *measure* the greedy strategies' optimality gap in CI, not to place
    production fleets.  Distinct (machine, tenant set) pairs are priced
    once in one batch; across assignments the fleet solve-memo deduplicates
    the rest.
    """

    name = "exhaustive-fleet"

    def __init__(self, max_assignments: int = 4096) -> None:
        if max_assignments < 1:
            raise ConfigurationError(
                f"max_assignments must be >= 1, got {max_assignments}"
            )
        self.max_assignments = max_assignments

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Return the cheapest feasible assignment of the whole space."""
        total = problem.n_machines ** problem.n_tenants
        if total > self.max_assignments:
            raise ConfigurationError(
                f"exhaustive-fleet would enumerate {total} assignments "
                f"({problem.n_machines} machines ^ {problem.n_tenants} "
                f"tenants), exceeding its max_assignments budget of "
                f"{self.max_assignments} (fleets up to the budget run; "
                f"{total} > {self.max_assignments} does not); it is a "
                f"small-fleet baseline — raise the guard explicitly, or "
                f"use 'bnb-fleet' for the same optimum past enumeration "
                f"scale"
            )
        feasible: List[Tuple[Tuple[int, ...], List[Tuple[int, Tuple[int, ...]]]]] = []
        needed: List[Tuple[int, Tuple[int, ...]]] = []
        seen = set()
        any_fits = False
        for candidate in itertools.product(
            range(problem.n_machines), repeat=problem.n_tenants
        ):
            loads: List[List[int]] = [[] for _ in problem.machines]
            for tenant_index, machine_index in enumerate(candidate):
                loads[machine_index].append(tenant_index)
            keys = [
                (machine_index, tuple(load))
                for machine_index, load in enumerate(loads)
                if load
            ]
            if not all(solver.fits(machine_index, load) for machine_index, load in keys):
                continue
            any_fits = True
            feasible.append((candidate, keys))
            for key in keys:
                if key not in seen:
                    seen.add(key)
                    needed.append(key)
        if not feasible:
            raise PlacementError(
                f"no assignment of the {problem.n_tenants} tenants onto the "
                f"{problem.n_machines} machines satisfies the capacity "
                f"constraints"
            )
        priced = dict(zip(needed, _price_candidates(solver, needed)))
        best: Optional[Tuple[int, ...]] = None
        best_cost = float("inf")
        for candidate, keys in feasible:
            cost = sum(priced[key] for key in keys)
            if cost < best_cost - 1e-12:
                best = candidate
                best_cost = cost
        if best is None:  # every feasible assignment priced +inf
            raise PlacementError(
                "machines with capacity exist, but every complete assignment "
                "violates some co-located tenants' degradation limits"
                if any_fits
                else "no feasible assignment"
            )
        return best


PLACEMENTS.register("round-robin", lambda **_ignored: RoundRobinPlacement())
PLACEMENTS.register("first-fit", lambda **_ignored: FirstFitPlacement())
PLACEMENTS.register(
    "greedy-cost",
    lambda sort_by_gain=True, **_ignored: GreedyCostPlacement(sort_by_gain=sort_by_gain),
)
PLACEMENTS.register(
    "greedy-cost-spec",
    lambda sort_by_gain=True, lookahead=DEFAULT_LOOKAHEAD, **_ignored: (
        GreedyCostPlacement(
            sort_by_gain=sort_by_gain, speculate=True, lookahead=lookahead
        )
    ),
)
PLACEMENTS.register(
    "greedy-cost+ls",
    lambda max_rounds=12, sort_by_gain=True, speculate=False,
    lookahead=DEFAULT_LOOKAHEAD, **_ignored: LocalSearchPlacement(
        max_rounds=max_rounds,
        sort_by_gain=sort_by_gain,
        speculate=speculate,
        lookahead=lookahead,
    ),
)
PLACEMENTS.register(
    "exhaustive-fleet",
    lambda max_assignments=4096, **_ignored: ExhaustiveFleetPlacement(
        max_assignments=max_assignments
    ),
)
