"""Pluggable tenant-placement strategies for the fleet advisor.

Placement decides *which machine* hosts each tenant; the per-machine
resource split is always delegated to :class:`repro.api.Advisor`.  The
strategies live behind the same open :class:`~repro.api.strategies.StrategyRegistry`
pattern as the enumerator / cost-function / refinement registries, so
downstream code can register its own placement policy and select it by
name on :class:`~repro.fleet.advisor.FleetAdvisor`:

* ``"round-robin"`` — cycle tenants across machines in order, skipping
  machines that are out of capacity.  ``O(N·M)``; the fairness baseline
  the paper-style evaluation compares against.
* ``"first-fit"`` — classic bin-packing baseline: each tenant goes to the
  first machine (in machine order) with room.  ``O(N·M)``; packs tightly
  but ignores cost.
* ``"greedy-cost"`` — for each tenant, tentatively co-locate it with every
  machine's current tenants, re-solve that machine's division with the
  per-machine advisor, and commit to the machine whose *marginal*
  gain-weighted cost increase is smallest.  ``O(N·M)`` advisor solves —
  but each solve builds its per-tenant cost tables through the batched
  :meth:`~repro.core.cost_estimator.CostFunction.cost_many` path against
  the fleet's shared :class:`~repro.api.cache.CostCache`, so the optimizer
  work for one (tenant, machine-shape) pair is paid once across all
  probes, machines of the same hardware, and repeated recommendations.

A strategy only needs ``place(problem, solver)``; the ``solver`` (a
:class:`PlacementSolver`) answers capacity questions and prices candidate
co-locations, keeping strategies free of calibration and advisor plumbing.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..api.strategies import StrategyRegistry
from ..exceptions import PlacementError
from .problem import FleetProblem


@runtime_checkable
class PlacementSolver(Protocol):
    """What a placement strategy may ask of the fleet advisor.

    Implemented by the fleet advisor's internal solver; exposed as a
    protocol so placement strategies (including user-registered ones)
    depend only on this narrow surface.
    """

    def fits(self, machine_index: int, tenant_indices: Tuple[int, ...]) -> bool:
        """Whether the machine can host the tenant set (capacity + shares)."""
        ...

    def machine_cost(
        self, machine_index: int, tenant_indices: Tuple[int, ...]
    ) -> float:
        """Gain-weighted cost of a machine after the advisor divides it."""
        ...

    def machine_costs(
        self, candidates: "Sequence[Tuple[int, Tuple[int, ...]]]"
    ) -> List[float]:
        """Price several candidate co-locations at once.

        The fleet advisor's solver fans the batch out on the run's
        solver-execution backend; results align with ``candidates``.
        Strategy helpers fall back to :meth:`machine_cost` loops when a
        custom solver does not provide this method.
        """
        ...


@runtime_checkable
class PlacementStrategy(Protocol):
    """Assigns every tenant of a fleet problem to a machine."""

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Return the machine index chosen for each tenant (tenant order)."""
        ...


#: Registry of placement strategies (``placement=`` on the FleetAdvisor).
PLACEMENTS = StrategyRegistry("placement")


def _unplaceable(
    problem: FleetProblem, tenant_index: int, qos_blocked: bool = False
) -> PlacementError:
    """A uniform error for a tenant no machine can currently host.

    ``qos_blocked`` distinguishes the two failure modes a cost-aware
    strategy can hit: every machine out of capacity, versus machines with
    room whose co-locations no allocation can make feasible (degradation
    limits) — so the error points the operator at the actual blocker.
    """
    tenant = problem.tenants[tenant_index]
    if qos_blocked:
        return PlacementError(
            f"no machine can feasibly host tenant {tenant.name!r}: machines "
            f"with spare capacity exist, but every candidate co-location "
            f"violates the tenants' degradation limits"
        )
    return PlacementError(
        f"no machine can host tenant {tenant.name!r} "
        f"(cpu_demand={tenant.cpu_demand:g}, "
        f"memory_demand_mb={tenant.memory_demand_mb:g}) "
        f"given the tenants already placed"
    )


def _place_in_machine_order(
    problem: FleetProblem, solver: PlacementSolver, start_of
) -> Tuple[int, ...]:
    """Place each tenant on the first fitting machine from a start index.

    Shared body of the two cost-blind baselines; ``start_of(tenant_index)``
    chooses where the scan begins (always 0 for first-fit, rotating for
    round-robin).
    """
    loads: List[List[int]] = [[] for _ in problem.machines]
    assignment: List[int] = []
    for tenant_index in range(problem.n_tenants):
        start = start_of(tenant_index)
        for offset in range(problem.n_machines):
            machine_index = (start + offset) % problem.n_machines
            candidate = tuple(loads[machine_index] + [tenant_index])
            if solver.fits(machine_index, candidate):
                loads[machine_index].append(tenant_index)
                assignment.append(machine_index)
                break
        else:
            raise _unplaceable(problem, tenant_index)
    return tuple(assignment)


class RoundRobinPlacement:
    """Cycle tenants across machines in order, skipping full machines.

    The fairness baseline: ignores cost entirely and spreads tenants as
    evenly as the capacities allow, the way a naive load balancer would.
    """

    name = "round-robin"

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Assign tenant ``i`` to machine ``i mod M`` (next fit with room)."""
        return _place_in_machine_order(
            problem, solver, lambda tenant_index: tenant_index % problem.n_machines
        )


class FirstFitPlacement:
    """Place each tenant on the first machine (machine order) with room.

    The classic bin-packing baseline: packs machines tightly in order,
    which minimizes machines used but concentrates load (and therefore
    cost) on the low-index machines.
    """

    name = "first-fit"

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Assign each tenant to the lowest-index machine that fits it."""
        return _place_in_machine_order(problem, solver, lambda tenant_index: 0)


def greedy_assign(
    problem: FleetProblem,
    solver: PlacementSolver,
    order: List[int],
    assignment: List[Optional[int]],
    loads: List[List[int]],
    current_cost: List[float],
) -> Tuple[int, ...]:
    """Greedily commit each tenant in ``order`` to its cheapest machine.

    The shared body of :class:`GreedyCostPlacement` and the fleet
    advisor's incremental re-placement: ``assignment`` / ``loads`` /
    ``current_cost`` may already contain committed (pinned) tenants, and
    every tenant in ``order`` is assigned to the machine whose *marginal*
    gain-weighted cost increase is smallest (ties break toward the
    lower-index machine).  All three state arguments are mutated in place;
    the completed assignment is returned.
    """
    batch_costs = getattr(solver, "machine_costs", None)
    for tenant_index in order:
        # The candidate machines of one tenant are priced as a batch: on a
        # parallel solver backend the probes fan out, and because costs
        # come back aligned with the (ascending-machine-index) candidate
        # list, the selection below — including the 1e-12 tie-break toward
        # the lower-index machine — is identical to the serial loop's.
        fitting: List[Tuple[int, Tuple[int, ...]]] = []
        for machine_index in range(problem.n_machines):
            candidate = tuple(loads[machine_index] + [tenant_index])
            if solver.fits(machine_index, candidate):
                fitting.append((machine_index, candidate))
        if batch_costs is not None:
            costs = batch_costs(fitting)
        else:
            costs = [
                solver.machine_cost(machine_index, candidate)
                for machine_index, candidate in fitting
            ]
        best_machine: Optional[int] = None
        best_increase = float("inf")
        best_cost = 0.0
        for (machine_index, _candidate), cost in zip(fitting, costs):
            increase = cost - current_cost[machine_index]
            if increase < best_increase - 1e-12:
                best_machine = machine_index
                best_increase = increase
                best_cost = cost
        if best_machine is None:
            raise _unplaceable(problem, tenant_index, qos_blocked=bool(fitting))
        loads[best_machine].append(tenant_index)
        current_cost[best_machine] = best_cost
        assignment[tenant_index] = best_machine
    return tuple(assignment)  # type: ignore[arg-type]


class GreedyCostPlacement:
    """Place each tenant where the marginal weighted-cost increase is least.

    For tenant ``t`` and every machine ``m`` with room, the strategy prices
    the co-location by asking the per-machine advisor to re-divide ``m``
    with ``t`` added — ``Δ(m, t) = cost(m, S_m ∪ {t}) − cost(m, S_m)`` where
    costs are the gain-weighted objective ``Σᵢ Gᵢ·Costᵢ`` — and commits
    ``t`` to the machine minimizing ``Δ``.  Ties break toward the
    lower-index machine, so the result is deterministic.

    Tenants are considered in descending gain factor (then problem order):
    heavyweight tenants choose machines while the fleet is still empty,
    which is the standard decreasing-first heuristic from bin packing
    transplanted to a cost objective.
    """

    name = "greedy-cost"

    def __init__(self, sort_by_gain: bool = True) -> None:
        self.sort_by_gain = sort_by_gain

    def place(self, problem: FleetProblem, solver: PlacementSolver) -> Tuple[int, ...]:
        """Greedily commit each tenant to its cheapest feasible machine."""
        order = list(range(problem.n_tenants))
        if self.sort_by_gain:
            order.sort(key=lambda index: (-problem.tenants[index].gain_factor, index))
        return greedy_assign(
            problem,
            solver,
            order,
            assignment=[None] * problem.n_tenants,
            loads=[[] for _ in problem.machines],
            current_cost=[0.0 for _ in problem.machines],
        )


PLACEMENTS.register("round-robin", lambda **_ignored: RoundRobinPlacement())
PLACEMENTS.register("first-fit", lambda **_ignored: FirstFitPlacement())
PLACEMENTS.register(
    "greedy-cost",
    lambda sort_by_gain=True, **_ignored: GreedyCostPlacement(sort_by_gain=sort_by_gain),
)
