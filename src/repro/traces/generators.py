"""Synthetic workload-trace generators.

Each generator produces a :class:`~repro.traces.model.WorkloadTrace` with a
characteristic temporal shape, so shifting-workload scenarios can be
spawned from one line instead of hand-written event lists:

* :func:`diurnal_trace` — sinusoidal day/night intensity cycles, optionally
  staggered across tenants (offices in different time zones).
* :func:`ramp_trace` — linear intensity growth (or decay) over the trace.
* :func:`spike_trace` — flat intensity with one flash-crowd period.
* :func:`step_shift_trace` — a one-off statement-mix change at a chosen
  period (the paper's "major change": new queries, not just more clients).
* :func:`tenant_swap_trace` — adjacent tenant pairs exchange their entire
  mixes at chosen periods (the §7.10 "workloads switch virtual machines"
  move, generalized to any tenant list).
* :func:`sec710_schedule` — the paper's §7.10 experiment schedule itself
  (growing TPC-H versus steady TPC-C, switching slots twice) as a named
  generator, so the Figures 35–36 script is just one member of the family.

All generators are deterministic: the same arguments always produce the
same trace, which is what lets a repeated replay answer entirely from the
cost cache.  ``GENERATORS`` maps each generator's name to its function for
discovery (docs and CLI listings).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..api.scenario import TenantSpec
from ..exceptions import ConfigurationError
from ..workloads.generator import TRANSACTIONS_PER_CLIENT
from ..workloads.tpcc import TPCC_MIX
from ..workloads.units import CPU_UNIT_Q18_INSTANCES
from ..workloads.workload import DEFAULT_MONITORING_INTERVAL_SECONDS
from .model import TenantTrace, TraceEvent, WorkloadTrace

TenantSpecLike = Union[TenantSpec, Mapping[str, Any]]


def _coerce_specs(tenants: Sequence[TenantSpecLike]) -> Tuple[TenantSpec, ...]:
    if not tenants:
        raise ConfigurationError("a trace generator needs at least one tenant")
    return tuple(
        tenant if isinstance(tenant, TenantSpec) else TenantSpec.from_dict(tenant)
        for tenant in tenants
    )


def _require_periods(n_periods: int) -> None:
    if n_periods < 1:
        raise ConfigurationError(f"n_periods must be at least 1, got {n_periods}")


def _intensity_trace(
    name: str,
    specs: Tuple[TenantSpec, ...],
    n_periods: int,
    period_seconds: float,
    intensity_of: Callable[[int, int], float],
) -> WorkloadTrace:
    """A trace whose events carry only per-period intensities.

    ``intensity_of(tenant_index, period)`` gives the arrival-rate
    multiplier for each (tenant, 1-based period); consecutive equal
    intensities are collapsed into a single event.
    """
    tenants = []
    for index, spec in enumerate(specs):
        events = []
        for period in range(1, n_periods + 1):
            intensity = intensity_of(index, period)
            if events and events[-1].intensity == intensity:
                continue
            events.append(
                TraceEvent(
                    time_seconds=(period - 1) * period_seconds, intensity=intensity
                )
            )
        tenants.append(TenantTrace(spec=spec, events=tuple(events)))
    return WorkloadTrace(
        name=name,
        tenants=tuple(tenants),
        period_seconds=period_seconds,
        n_periods=n_periods,
    )


def diurnal_trace(
    tenants: Sequence[TenantSpecLike],
    n_periods: int = 48,
    period_seconds: float = DEFAULT_MONITORING_INTERVAL_SECONDS,
    base_intensity: float = 1.0,
    amplitude: float = 0.5,
    cycle_periods: int = 48,
    stagger_periods: float = 0.0,
    name: str = "diurnal",
) -> WorkloadTrace:
    """Sinusoidal day/night intensity cycles.

    Tenant ``i``'s intensity in period ``p`` is
    ``base * (1 + amplitude * sin(2π (p - 1 + i·stagger) / cycle))`` —
    one full cycle every ``cycle_periods`` periods (48 half-hour periods =
    one day), with tenant ``i`` shifted ``i * stagger_periods`` periods.
    """
    _require_periods(n_periods)
    if not 0.0 <= amplitude < 1.0:
        raise ConfigurationError(
            f"amplitude must be in [0, 1) so intensities stay positive, "
            f"got {amplitude}"
        )
    if base_intensity <= 0:
        raise ConfigurationError(
            f"base_intensity must be positive, got {base_intensity}"
        )
    if cycle_periods < 1:
        raise ConfigurationError(
            f"cycle_periods must be at least 1, got {cycle_periods}"
        )
    specs = _coerce_specs(tenants)

    def intensity_of(index: int, period: int) -> float:
        phase = (period - 1 + index * stagger_periods) / cycle_periods
        return base_intensity * (1.0 + amplitude * math.sin(2.0 * math.pi * phase))

    return _intensity_trace(name, specs, n_periods, period_seconds, intensity_of)


def ramp_trace(
    tenants: Sequence[TenantSpecLike],
    n_periods: int = 9,
    period_seconds: float = DEFAULT_MONITORING_INTERVAL_SECONDS,
    start_intensity: float = 1.0,
    end_intensity: float = 4.0,
    name: str = "ramp",
) -> WorkloadTrace:
    """Linear intensity ramp from ``start_intensity`` to ``end_intensity``.

    With ``end < start`` the ramp decays; a one-period trace holds the
    start intensity.  This is the §7.10 "one more workload unit every
    period" drift in generator form.
    """
    _require_periods(n_periods)
    if start_intensity <= 0 or end_intensity <= 0:
        raise ConfigurationError("ramp intensities must be positive")
    specs = _coerce_specs(tenants)
    steps = max(1, n_periods - 1)

    def intensity_of(index: int, period: int) -> float:
        fraction = (period - 1) / steps
        return start_intensity + (end_intensity - start_intensity) * fraction

    return _intensity_trace(name, specs, n_periods, period_seconds, intensity_of)


def spike_trace(
    tenants: Sequence[TenantSpecLike],
    spike_period: int,
    n_periods: int = 9,
    period_seconds: float = DEFAULT_MONITORING_INTERVAL_SECONDS,
    base_intensity: float = 1.0,
    magnitude: float = 5.0,
    spike_tenants: Optional[Sequence[str]] = None,
    name: str = "spike",
) -> WorkloadTrace:
    """Flat intensity with one flash-crowd period.

    During ``spike_period`` the spiking tenants (all of them by default)
    run at ``base_intensity * magnitude``; every other period runs at the
    base intensity.
    """
    _require_periods(n_periods)
    if not 1 <= spike_period <= n_periods:
        raise ConfigurationError(
            f"spike_period must be in [1, {n_periods}], got {spike_period}"
        )
    if base_intensity <= 0 or magnitude <= 0:
        raise ConfigurationError("base_intensity and magnitude must be positive")
    specs = _coerce_specs(tenants)
    spiking = (
        {spec.name for spec in specs}
        if spike_tenants is None
        else set(spike_tenants)
    )
    unknown = spiking - {spec.name for spec in specs}
    if unknown:
        raise ConfigurationError(
            f"spike_tenants name(s) not in the tenant list: "
            f"{', '.join(map(repr, sorted(unknown)))}"
        )

    def intensity_of(index: int, period: int) -> float:
        if period == spike_period and specs[index].name in spiking:
            return base_intensity * magnitude
        return base_intensity

    return _intensity_trace(name, specs, n_periods, period_seconds, intensity_of)


def step_shift_trace(
    tenants: Sequence[TenantSpecLike],
    shift_period: int,
    shifted_statements: Mapping[str, Sequence[Any]],
    n_periods: int = 9,
    period_seconds: float = DEFAULT_MONITORING_INTERVAL_SECONDS,
    intensity: float = 1.0,
    name: str = "step-shift",
) -> WorkloadTrace:
    """A one-off statement-mix change at ``shift_period``.

    ``shifted_statements`` maps tenant names to the mix they serve from
    the shift onward; unmapped tenants keep their base mix throughout.
    Unlike an intensity change, a mix change moves the *average cost per
    statement*, which is what the dynamic manager classifies as a major
    change.
    """
    _require_periods(n_periods)
    if not 1 <= shift_period <= n_periods:
        raise ConfigurationError(
            f"shift_period must be in [1, {n_periods}], got {shift_period}"
        )
    specs = _coerce_specs(tenants)
    unknown = set(shifted_statements) - {spec.name for spec in specs}
    if unknown:
        raise ConfigurationError(
            f"shifted_statements name(s) not in the tenant list: "
            f"{', '.join(map(repr, sorted(unknown)))}"
        )
    shift_time = (shift_period - 1) * period_seconds
    traced = []
    for spec in specs:
        events = []
        if spec.name in shifted_statements:
            events.append(
                TraceEvent(
                    time_seconds=shift_time,
                    intensity=intensity,
                    statements=tuple(shifted_statements[spec.name]),
                )
            )
        traced.append(TenantTrace(spec=spec, events=tuple(events)))
    return WorkloadTrace(
        name=name,
        tenants=tuple(traced),
        period_seconds=period_seconds,
        n_periods=n_periods,
    )


def tenant_swap_trace(
    tenants: Sequence[TenantSpecLike],
    swap_periods: Sequence[int],
    n_periods: int = 9,
    period_seconds: float = DEFAULT_MONITORING_INTERVAL_SECONDS,
    intensity: float = 1.0,
    name: str = "tenant-swap",
) -> WorkloadTrace:
    """Adjacent tenant pairs exchange their entire mixes at swap periods.

    Tenants are paired in list order — (0, 1), (2, 3), ... — and at every
    period in ``swap_periods`` each pair swaps statement mixes, benchmarks,
    and scales (a trailing unpaired tenant is left alone).  Repeated swaps
    toggle the pairs back.  This is the §7.10 "workloads switch virtual
    machines" move: each tenant keeps its identity and machine, but what it
    *serves* changes completely — a major change on both sides.
    """
    _require_periods(n_periods)
    for period in swap_periods:
        if not 1 <= period <= n_periods:
            raise ConfigurationError(
                f"swap period {period} outside [1, {n_periods}]"
            )
    if len(set(swap_periods)) != len(tuple(swap_periods)):
        raise ConfigurationError("swap_periods must not repeat")
    specs = _coerce_specs(tenants)
    if len(specs) < 2:
        raise ConfigurationError("tenant_swap_trace needs at least two tenants")
    swaps = sorted(swap_periods)

    def mix_of(spec: TenantSpec, time: float) -> TraceEvent:
        # The full mix state of a spec, as the event in force from ``time``.
        return TraceEvent(
            time_seconds=time,
            intensity=intensity,
            statements=spec.statements,
            benchmark=spec.benchmark,
            scale=spec.scale,
        )

    events: Dict[int, list] = {index: [] for index in range(len(specs))}
    # ``holding[i]`` is the index of the spec whose mix tenant i serves.
    holding = list(range(len(specs)))
    for period in swaps:
        time = (period - 1) * period_seconds
        for first in range(0, len(specs) - 1, 2):
            second = first + 1
            holding[first], holding[second] = holding[second], holding[first]
            for slot in (first, second):
                events[slot].append(mix_of(specs[holding[slot]], time))
    traced = tuple(
        TenantTrace(spec=spec, events=tuple(events[index]))
        for index, spec in enumerate(specs)
    )
    return WorkloadTrace(
        name=name,
        tenants=traced,
        period_seconds=period_seconds,
        n_periods=n_periods,
    )


def sec710_schedule(
    n_periods: int = 9,
    switch_periods: Sequence[int] = (3, 7),
    warehouses: int = 10,
    tpch_scale: float = 1.0,
    base_tpch_units: int = 2,
    tpcc_warehouses_accessed: int = 8,
    tpcc_clients: int = 10,
    period_seconds: float = DEFAULT_MONITORING_INTERVAL_SECONDS,
    name: str = "sec710",
) -> WorkloadTrace:
    """The paper's §7.10 dynamic-management schedule as a trace.

    Two DB2 slots: ``vm1`` starts with a TPC-H mix (one C unit of
    ``q18`` and one I unit of ``q21`` per workload unit, growing by one
    unit every period — the minor, intensity-only drift), ``vm2`` with a
    steady TPC-C mix (``tpcc_warehouses_accessed × tpcc_clients``
    clients at the standard transaction mix).  At every period in
    ``switch_periods`` the two slots exchange workloads (the major
    change).  Replaying this trace reproduces the Figures 35–36
    experiment period for period.
    """
    _require_periods(n_periods)
    for period in switch_periods:
        if not 1 <= period <= n_periods:
            raise ConfigurationError(
                f"switch period {period} outside [1, {n_periods}]"
            )
    tpch_statements = (
        ("q18", CPU_UNIT_Q18_INSTANCES["db2"]),
        ("q21", 1.0),
    )
    tpcc_statements = tuple(TPCC_MIX.items())
    tpcc_intensity = (
        tpcc_warehouses_accessed * tpcc_clients * TRANSACTIONS_PER_CLIENT
    )
    tpch_spec = TenantSpec(
        name="vm1",
        engine="db2",
        benchmark="tpch",
        scale=tpch_scale,
        statements=tpch_statements,
    )
    tpcc_spec = TenantSpec(
        name="vm2",
        engine="db2",
        benchmark="tpcc",
        scale=float(warehouses),
        statements=tpcc_statements,
    )

    def tpch_event(time: float, units: float) -> TraceEvent:
        return TraceEvent(
            time_seconds=time,
            intensity=units,
            statements=tpch_statements,
            benchmark="tpch",
            scale=tpch_scale,
        )

    def tpcc_event(time: float) -> TraceEvent:
        return TraceEvent(
            time_seconds=time,
            intensity=tpcc_intensity,
            statements=tpcc_statements,
            benchmark="tpcc",
            scale=float(warehouses),
        )

    events: Dict[str, list] = {"vm1": [], "vm2": []}
    tpch_on_first = True
    for period in range(1, n_periods + 1):
        if period in switch_periods:
            tpch_on_first = not tpch_on_first
        time = (period - 1) * period_seconds
        units = float(base_tpch_units + (period - 1))
        tpch_slot, tpcc_slot = ("vm1", "vm2") if tpch_on_first else ("vm2", "vm1")
        events[tpch_slot].append(tpch_event(time, units))
        events[tpcc_slot].append(tpcc_event(time))
    return WorkloadTrace(
        name=name,
        tenants=(
            TenantTrace(spec=tpch_spec, events=tuple(events["vm1"])),
            TenantTrace(spec=tpcc_spec, events=tuple(events["vm2"])),
        ),
        period_seconds=period_seconds,
        n_periods=n_periods,
    )


#: Named generator registry (discovery for docs and the CLI).
GENERATORS: Dict[str, Callable[..., WorkloadTrace]] = {
    "diurnal": diurnal_trace,
    "ramp": ramp_trace,
    "spike": spike_trace,
    "step-shift": step_shift_trace,
    "tenant-swap": tenant_swap_trace,
    "sec710": sec710_schedule,
}
