"""Trace replay: driving dynamic reconfiguration from a workload trace.

A :class:`~repro.traces.model.WorkloadTrace` says *what* every tenant
serves in every monitoring period; this module turns that into decisions:

* :class:`TraceReplayer` — all traced tenants consolidated on **one**
  machine.  Each period's effective specs are materialized into
  :class:`~repro.core.problem.ConsolidatedWorkload`\\ s and fed to the
  existing :class:`~repro.core.dynamic.DynamicConfigurationManager`, which
  classifies the change (none / minor / major), refines or discards its
  cost models, and re-allocates the CPU — the §7.10 loop, driven by data
  instead of a hard-coded script.
* :class:`FleetTraceReplayer` — the same loop at fleet scale.  Every
  machine of a :class:`~repro.fleet.FleetProblem` runs its own dynamic
  manager over the tenants placed on it; when any tenant's change is
  classified **major**, the replayer calls
  :meth:`~repro.fleet.FleetAdvisor.recommend_incremental` to re-place just
  the changed tenants (everything unchanged is re-priced from the cache),
  rebuilding managers only on machines whose tenant set moved.

Both replayers support three policies:

* ``"dynamic"`` — the paper's dynamic configuration management (and, at
  fleet scale, incremental re-placement on major changes);
* ``"continuous"`` — the continuous-online-refinement baseline (every
  change treated as minor, never re-place);
* ``"static"`` — the initial recommendation held for the whole trace (the
  do-nothing baseline dynamic policies are measured against).

Every cost question — what-if estimates, model refits, observed "actual"
costs, placement probes — is served through the advisor's shared
:class:`~repro.api.cache.CostCache`, so **replaying the same trace twice
performs zero new cost-estimator evaluations**: the replay's
:class:`~repro.api.report.CostCallStats` (cache-delta based) makes that
property visible in the :class:`ReplayReport`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..api.advisor import Advisor
from ..api.builder import ProblemBuilder
from ..api.report import CostCallStats
from ..core.dynamic import DynamicConfigurationManager
from ..core.problem import (
    CPU,
    ConsolidatedWorkload,
    FIXED_MEMORY_FRACTION_512MB,
    ResourceAllocation,
    VirtualizationDesignProblem,
)
from ..exceptions import ConfigurationError
from ..fleet.advisor import FleetAdvisor
from ..fleet.problem import FleetProblem, FleetTenant
from ..monitoring.metrics import relative_improvement
from ..monitoring.monitor import CHANGE_MAJOR
from ..parallel.backends import BackendSpec, SolveTask, SolverBackend, resolve_backend
from ..telemetry.trace import get_tracer
from .model import WorkloadTrace

#: Replay policies.
POLICY_DYNAMIC = "dynamic"
POLICY_CONTINUOUS = "continuous"
POLICY_STATIC = "static"
POLICIES = (POLICY_DYNAMIC, POLICY_CONTINUOUS, POLICY_STATIC)

#: The paper's fixed 512 MB per-VM grant on the 8 GB testbed, used when the
#: replayed problems control CPU only (the §7.10 setting); canonical in
#: :mod:`repro.core.problem`.
DEFAULT_FIXED_MEMORY_FRACTION = FIXED_MEMORY_FRACTION_512MB


def _check_policy(policy: str) -> str:
    if policy not in POLICIES:
        raise ConfigurationError(
            f"unknown replay policy {policy!r}; expected one of "
            f"{', '.join(POLICIES)}"
        )
    return policy


def _allocation_dict(allocation: ResourceAllocation) -> Dict[str, float]:
    return {
        "cpu_share": allocation.cpu_share,
        "memory_fraction": allocation.memory_fraction,
    }


def _stats_delta(before: CostCallStats, after: CostCallStats) -> CostCallStats:
    return CostCallStats(
        evaluations=after.evaluations - before.evaluations,
        cache_hits=after.cache_hits - before.cache_hits,
        cache_misses=after.cache_misses - before.cache_misses,
    )


def _step_backend(backend: SolverBackend) -> SolverBackend:
    """The backend a replayer's *manager steps* run on.

    Dynamic-manager steps carry mutable in-process state, so they cannot
    ship across processes; a process backend delegates them to its
    same-width thread fallback (``inline()``), while serial and thread
    backends run them directly.
    """
    inline = getattr(backend, "inline", None)
    return inline() if callable(inline) else backend


@dataclass(frozen=True)
class ReplayPeriod:
    """Everything one monitoring period of a replay produced.

    All per-tenant mappings are keyed by tenant name.  ``allocations`` and
    the costs describe the allocation *in force during* the period (the
    previous period's decision); re-allocations decided at period end show
    up in the next period.
    """

    period: int
    placement: Dict[str, str]
    allocations: Dict[str, Dict[str, float]]
    change_classes: Dict[str, str]
    model_actions: Dict[str, str]
    estimated_costs: Dict[str, float]
    actual_costs: Dict[str, float]
    default_cost: float
    actual_cost: float
    improvement_over_default: float
    replaced: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """The period as a JSON-safe dictionary."""
        return {
            "period": self.period,
            "placement": dict(self.placement),
            "allocations": {
                name: dict(allocation)
                for name, allocation in self.allocations.items()
            },
            "change_classes": dict(self.change_classes),
            "model_actions": dict(self.model_actions),
            "estimated_costs": dict(self.estimated_costs),
            "actual_costs": dict(self.actual_costs),
            "default_cost": self.default_cost,
            "actual_cost": self.actual_cost,
            "improvement_over_default": self.improvement_over_default,
            "replaced": self.replaced,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReplayPeriod":
        """Rebuild a period record from its dictionary form."""
        return cls(
            period=data["period"],
            placement=dict(data["placement"]),
            allocations={
                name: dict(allocation)
                for name, allocation in data["allocations"].items()
            },
            change_classes=dict(data["change_classes"]),
            model_actions=dict(data["model_actions"]),
            estimated_costs=dict(data["estimated_costs"]),
            actual_costs=dict(data["actual_costs"]),
            default_cost=data["default_cost"],
            actual_cost=data["actual_cost"],
            improvement_over_default=data["improvement_over_default"],
            replaced=data.get("replaced", False),
        )


@dataclass(frozen=True)
class ReplayReport:
    """The serializable outcome of replaying one trace under one policy.

    Attributes:
        trace_name: name of the replayed trace.
        mode: ``"single-machine"`` or ``"fleet"``.
        policy: the replay policy (``"dynamic"`` / ``"continuous"`` /
            ``"static"``).
        periods: one :class:`ReplayPeriod` per monitoring period.
        cost_stats: shared-cache traffic of the whole replay (evaluations
            equal cache misses; 0 evaluations ⇒ the replay was answered
            entirely from the cache).
        wall_time_seconds: wall-clock time of the replay.
        backend: the solver-execution backend the replay was requested on
            (provenance; stateful manager steps run on a process backend's
            thread fallback).
        jobs: the backend's worker count.
    """

    trace_name: str
    mode: str
    policy: str
    periods: Tuple[ReplayPeriod, ...]
    cost_stats: CostCallStats
    wall_time_seconds: float
    backend: str = "serial"
    jobs: int = 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_periods(self) -> int:
        """Number of replayed periods."""
        return len(self.periods)

    @property
    def cumulative_actual_cost(self) -> float:
        """Total observed cost across all periods (the comparison metric)."""
        return sum(period.actual_cost for period in self.periods)

    @property
    def replacements(self) -> Tuple[int, ...]:
        """Periods at whose end a fleet re-placement was committed."""
        return tuple(period.period for period in self.periods if period.replaced)

    def improvements_over_default(self) -> List[float]:
        """Per-period improvement of the in-force allocation over default."""
        return [period.improvement_over_default for period in self.periods]

    def change_classes_of(self, tenant: str) -> List[str]:
        """The change classification of one tenant, period by period."""
        return [period.change_classes.get(tenant, "none") for period in self.periods]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The report as a JSON-safe dictionary."""
        return {
            "trace_name": self.trace_name,
            "mode": self.mode,
            "policy": self.policy,
            "cumulative_actual_cost": self.cumulative_actual_cost,
            "periods": [period.to_dict() for period in self.periods],
            "cost_stats": self.cost_stats.to_dict(),
            "wall_time_seconds": self.wall_time_seconds,
            "backend": self.backend,
            "jobs": self.jobs,
        }

    def canonical_dict(self) -> Dict[str, Any]:
        """The replay's *decisions*, stripped of run artifacts.

        The determinism contract of the parallel solver backends, replay
        edition: every backend produces the serial backend's periods —
        placements, allocations, change classes, and costs — bit for bit.
        Wall-clock time, cache-traffic statistics, and the backend/jobs
        provenance are dropped.
        """
        return {
            "trace_name": self.trace_name,
            "mode": self.mode,
            "policy": self.policy,
            "cumulative_actual_cost": self.cumulative_actual_cost,
            "periods": [period.to_dict() for period in self.periods],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReplayReport":
        """Rebuild a replay report from its dictionary form."""
        return cls(
            trace_name=data["trace_name"],
            mode=data["mode"],
            policy=data["policy"],
            periods=tuple(
                ReplayPeriod.from_dict(period) for period in data["periods"]
            ),
            cost_stats=CostCallStats.from_dict(data["cost_stats"]),
            wall_time_seconds=data["wall_time_seconds"],
            backend=data.get("backend", "serial"),
            jobs=data.get("jobs", 1),
        )

    @classmethod
    def from_json(cls, document: Union[str, bytes]) -> "ReplayReport":
        """Rebuild a replay report from a JSON document."""
        return cls.from_dict(json.loads(document))


class TraceReplayer:
    """Replays a trace on one machine through the dynamic manager.

    Args:
        trace: the workload trace to replay.
        advisor: the :class:`~repro.api.Advisor` whose enumerator, shared
            cost caches, and dynamic-manager factory drive the replay
            (a default advisor is built when omitted).
        builder: the :class:`~repro.api.ProblemBuilder` that materializes
            the trace's tenant specs (databases, engines, calibrations);
            a default builder is created when omitted.  Pass the builder
            of an :class:`~repro.experiments.harness.ExperimentContext`
            to replay against the experiment testbed's calibrations.
        policy: ``"dynamic"``, ``"continuous"``, or ``"static"``.
        fixed_memory_fraction: per-VM memory grant (the replayed problems
            control CPU only, as the dynamic manager requires).
        backend: solver-execution backend, by registered name or instance.
            Under the ``"static"`` policy the per-period evaluations are
            independent and fan out on it; the dynamic policies are a
            sequential chain (each period's decision feeds the next), so
            a single-machine dynamic replay records the backend as
            provenance but cannot overlap periods.
        jobs: worker count for a backend given by name.
    """

    def __init__(
        self,
        trace: WorkloadTrace,
        advisor: Optional[Advisor] = None,
        builder: Optional[ProblemBuilder] = None,
        policy: str = POLICY_DYNAMIC,
        fixed_memory_fraction: float = DEFAULT_FIXED_MEMORY_FRACTION,
        backend: Optional[BackendSpec] = None,
        jobs: Optional[int] = None,
    ) -> None:
        self.trace = trace
        self.advisor = advisor if advisor is not None else Advisor()
        self.builder = builder if builder is not None else ProblemBuilder()
        self.policy = _check_policy(policy)
        self.fixed_memory_fraction = fixed_memory_fraction
        self.backend = resolve_backend(backend, jobs)

    def _period_tenants(self, period: int) -> Tuple[ConsolidatedWorkload, ...]:
        # The builder memoizes materializations by spec value, so repeated
        # states (and repeated replays) reuse identical workload objects —
        # the identity the shared cost cache answers for.
        return tuple(
            self.builder.consolidated(spec)
            for spec in self.trace.specs_at_period(period)
        )

    def replay(self) -> ReplayReport:
        """Replay every period of the trace and report what happened."""
        span = get_tracer().span(
            "replay.trace",
            trace=self.trace.name,
            mode="single-machine",
            policy=self.policy,
            periods=self.trace.n_periods,
        )
        span.__enter__()
        try:
            return self._replay()
        finally:
            span.__exit__(None, None, None)

    def _replay(self) -> ReplayReport:
        started = time.perf_counter()
        stats_before = self.advisor.cache_stats()
        machine_name = self.builder.machine.name
        names = self.trace.tenant_names()
        base_problem = VirtualizationDesignProblem(
            tenants=self._period_tenants(1),
            resources=(CPU,),
            fixed_memory_fraction=self.fixed_memory_fraction,
        )
        manager: Optional[DynamicConfigurationManager] = None
        if self.policy == POLICY_STATIC:
            static_allocations = self.advisor.recommend(base_problem).allocations
        else:
            manager = self.advisor.dynamic_manager(
                base_problem, always_refine=(self.policy == POLICY_CONTINUOUS)
            )
            manager.initial_recommendation()

        def build_period(
            period: int,
            in_force: Tuple[ResourceAllocation, ...],
            change_classes: Dict[str, str],
            model_actions: Dict[str, str],
            estimated: Dict[str, float],
            actual_costs: Dict[str, float],
            default_cost: float,
        ) -> ReplayPeriod:
            in_force_cost = sum(actual_costs.values())
            return ReplayPeriod(
                period=period,
                placement={name: machine_name for name in names},
                allocations={
                    name: _allocation_dict(allocation)
                    for name, allocation in zip(names, in_force)
                },
                change_classes=change_classes,
                model_actions=model_actions,
                estimated_costs=estimated,
                actual_costs=actual_costs,
                default_cost=default_cost,
                actual_cost=in_force_cost,
                improvement_over_default=relative_improvement(
                    default_cost, in_force_cost
                ),
            )

        periods: List[ReplayPeriod] = []
        if manager is None:
            # Static policy: the allocation never changes, so the periods
            # are independent evaluations — fan them out on the backend and
            # reassemble in period order.
            def static_period(period: int) -> ReplayPeriod:
                with get_tracer().span("replay.period", leaf=True, period=period):
                    tenants = self._period_tenants(period)
                    problem = base_problem.with_tenants(tenants)
                    actuals = self.advisor.cost_function(problem, "actual")
                    per_tenant = [
                        actuals.cost(index, allocation)
                        for index, allocation in enumerate(static_allocations)
                    ]
                    return build_period(
                        period,
                        static_allocations,
                        {},
                        {},
                        {},
                        dict(zip(names, per_tenant)),
                        actuals.total_cost(problem.default_allocation()),
                    )

            tasks = [
                SolveTask(
                    call=lambda period=period: static_period(period),
                    label=f"replay-period:{period}",
                )
                for period in range(1, self.trace.n_periods + 1)
            ]
            periods = list(_step_backend(self.backend).run(tasks))
        else:
            # Dynamic policies are a chain: period p's decision is period
            # p+1's starting allocation, so the loop stays sequential.
            for period in range(1, self.trace.n_periods + 1):
                with get_tracer().span("replay.period", leaf=True, period=period):
                    tenants = self._period_tenants(period)
                    problem = base_problem.with_tenants(tenants)
                    actuals = self.advisor.cost_function(problem, "actual")
                    in_force = manager.current_allocations
                    decision = manager.process_period(tenants)
                    periods.append(
                        build_period(
                            period,
                            in_force,
                            dict(zip(names, decision.change_classes)),
                            dict(zip(names, decision.model_actions)),
                            dict(zip(names, decision.observed_estimated_costs)),
                            dict(zip(names, decision.observed_actual_costs)),
                            actuals.total_cost(problem.default_allocation()),
                        )
                    )
        return ReplayReport(
            trace_name=self.trace.name,
            mode="single-machine",
            policy=self.policy,
            periods=tuple(periods),
            cost_stats=_stats_delta(stats_before, self.advisor.cache_stats()),
            wall_time_seconds=time.perf_counter() - started,
            backend=getattr(self.backend, "name", type(self.backend).__name__),
            jobs=self.backend.jobs,
        )


class FleetTraceReplayer:
    """Replays a trace across a fleet, re-placing tenants on major changes.

    The fleet problem supplies the machines and each tenant's placement
    footprint; the trace supplies what every tenant serves per period (the
    trace's tenant names must match the fleet's).  Per period, every
    non-idle machine's dynamic manager classifies its tenants' changes and
    re-divides the machine; under the ``"dynamic"`` policy a major change
    additionally triggers :meth:`~repro.fleet.FleetAdvisor.recommend_incremental`
    re-placement of the changed tenants at the period boundary.

    The fleet must control CPU only (``resources=["cpu"]``), matching the
    dynamic manager's scope.

    ``backend`` / ``jobs`` select the solver-execution backend: each
    period's per-machine manager steps are independent and run
    concurrently on it (a process backend's steps run on its same-width
    thread fallback — manager state cannot ship across processes), and the
    re-placement solves fan out through the internally-built
    :class:`~repro.fleet.FleetAdvisor`.  Supplying your own ``advisor``
    instead reuses that advisor's backend; the replayed periods are
    bit-identical to a serial replay either way
    (:meth:`ReplayReport.canonical_dict`).
    """

    def __init__(
        self,
        trace: WorkloadTrace,
        fleet: FleetProblem,
        advisor: Optional[FleetAdvisor] = None,
        policy: str = POLICY_DYNAMIC,
        replace_on_major: bool = True,
        backend: Optional[BackendSpec] = None,
        jobs: Optional[int] = None,
    ) -> None:
        if tuple(fleet.resources) != (CPU,):
            raise ConfigurationError(
                "fleet trace replay requires a CPU-only fleet "
                "(resources=['cpu']): dynamic configuration management "
                "controls CPU only, matching the paper's §7.10 setting"
            )
        trace_names = set(trace.tenant_names())
        fleet_names = set(fleet.tenant_names())
        if trace_names != fleet_names:
            missing = sorted(fleet_names - trace_names)
            extra = sorted(trace_names - fleet_names)
            raise ConfigurationError(
                f"trace tenants must match fleet tenants; "
                f"missing from trace: {missing}; not in fleet: {extra}"
            )
        self.trace = trace
        self.fleet = fleet
        if advisor is not None:
            if backend is not None or jobs is not None:
                raise ConfigurationError(
                    "pass backend/jobs either to the FleetTraceReplayer or "
                    "on the FleetAdvisor you supply, not both"
                )
            self.fleet_advisor = advisor
            self.backend = advisor.backend
        else:
            self.backend = resolve_backend(backend, jobs)
            # The replayer's re-placement calls (initial recommend +
            # incremental re-placements) fan out on the same backend as the
            # per-period manager steps.
            self.fleet_advisor = FleetAdvisor(backend=self.backend)
        self.policy = _check_policy(policy)
        self.replace_on_major = replace_on_major

    # ------------------------------------------------------------------
    # Period materialization
    # ------------------------------------------------------------------
    def _period_problem(self, period: int) -> FleetProblem:
        specs = dict(
            zip(self.trace.tenant_names(), self.trace.specs_at_period(period))
        )
        tenants = tuple(
            FleetTenant(
                spec=specs[tenant.name],
                cpu_demand=tenant.cpu_demand,
                memory_demand_mb=tenant.memory_demand_mb,
            )
            for tenant in self.fleet.tenants
        )
        return self.fleet.with_tenants(tenants)

    def _machine_loads(self, placement: Mapping[str, str]) -> Dict[int, Tuple[int, ...]]:
        """Machine index → sorted tenant indices under a placement."""
        index_of_machine = {
            machine.name: index for index, machine in enumerate(self.fleet.machines)
        }
        loads: Dict[int, List[int]] = {}
        for tenant_index, tenant in enumerate(self.fleet.tenants):
            machine_index = index_of_machine[placement[tenant.name]]
            loads.setdefault(machine_index, []).append(tenant_index)
        return {
            machine_index: tuple(sorted(indices))
            for machine_index, indices in loads.items()
        }

    def _make_manager(
        self, problem: FleetProblem, machine_index: int, indices: Tuple[int, ...]
    ) -> DynamicConfigurationManager:
        design = self.fleet_advisor.machine_problem(problem, machine_index, indices)
        manager = self.fleet_advisor.advisor.dynamic_manager(
            design, always_refine=(self.policy == POLICY_CONTINUOUS)
        )
        manager.initial_recommendation()
        return manager

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> ReplayReport:
        """Replay every period of the trace across the fleet."""
        span = get_tracer().span(
            "replay.trace",
            trace=self.trace.name,
            mode="fleet",
            policy=self.policy,
            periods=self.trace.n_periods,
        )
        span.__enter__()
        try:
            return self._replay()
        finally:
            span.__exit__(None, None, None)

    def _replay(self) -> ReplayReport:
        started = time.perf_counter()
        inner = self.fleet_advisor.advisor
        stats_before = inner.cache_stats()

        first_problem = self._period_problem(1)
        initial_report = self.fleet_advisor.recommend(first_problem)
        placement: Dict[str, str] = dict(initial_report.placement)
        loads = self._machine_loads(placement)
        static_allocations = {
            name: initial_report.tenant_allocation(name)
            for name in self.fleet.tenant_names()
        }
        managers: Dict[int, DynamicConfigurationManager] = {}
        if self.policy != POLICY_STATIC:
            managers = {
                machine_index: self._make_manager(
                    first_problem, machine_index, indices
                )
                for machine_index, indices in loads.items()
            }

        step_backend = _step_backend(self.backend)

        def machine_step(
            problem: FleetProblem, machine_index: int, indices: Tuple[int, ...]
        ) -> Dict[str, Any]:
            """One machine's period step; independent of every other machine."""
            design = self.fleet_advisor.machine_problem(
                problem, machine_index, indices
            )
            tenant_names = [tenant.name for tenant in design.tenants]
            actuals = inner.cost_function(design, "actual")
            record: Dict[str, Any] = {
                "default_cost": actuals.total_cost(design.default_allocation()),
                "change_classes": {},
                "model_actions": {},
                "estimated": {},
                "actual_costs": {},
                "majors": [],
            }
            if self.policy == POLICY_STATIC:
                in_force = tuple(static_allocations[name] for name in tenant_names)
                for index, name in enumerate(tenant_names):
                    record["actual_costs"][name] = actuals.cost(index, in_force[index])
            else:
                manager = managers[machine_index]
                in_force = manager.current_allocations
                decision = manager.process_period(design.tenants)
                for index, name in enumerate(tenant_names):
                    record["change_classes"][name] = decision.change_classes[index]
                    record["model_actions"][name] = decision.model_actions[index]
                    record["estimated"][name] = decision.observed_estimated_costs[index]
                    record["actual_costs"][name] = decision.observed_actual_costs[index]
                    if decision.change_classes[index] == CHANGE_MAJOR:
                        record["majors"].append(name)
            record["allocations"] = {
                name: _allocation_dict(allocation)
                for name, allocation in zip(tenant_names, in_force)
            }
            return record

        periods: List[ReplayPeriod] = []
        for period in range(1, self.trace.n_periods + 1):
            problem = self._period_problem(period)
            allocations: Dict[str, Dict[str, float]] = {}
            change_classes: Dict[str, str] = {}
            model_actions: Dict[str, str] = {}
            estimated: Dict[str, float] = {}
            actual_costs: Dict[str, float] = {}
            default_cost = 0.0
            majors: List[str] = []
            # Every machine's step is independent (its own dynamic manager,
            # its own tenants) — fan the steps out, then merge the records
            # in machine order so the period is identical to a serial run.
            ordered_loads = sorted(loads.items())
            tasks = [
                SolveTask(
                    call=lambda p=problem, m=machine_index, i=indices: (
                        machine_step(p, m, i)
                    ),
                    label=f"replay-machine:{machine_index}",
                )
                for machine_index, indices in ordered_loads
            ]
            # One leaf span per period covers the machine-step fan-out;
            # an incremental re-placement (below) keeps its own subtree.
            with get_tracer().span(
                "replay.period", leaf=True, period=period, machines=len(tasks)
            ):
                records = step_backend.run(tasks)
            for record in records:
                default_cost += record["default_cost"]
                change_classes.update(record["change_classes"])
                model_actions.update(record["model_actions"])
                estimated.update(record["estimated"])
                actual_costs.update(record["actual_costs"])
                allocations.update(record["allocations"])
                majors.extend(record["majors"])

            in_force_cost = sum(actual_costs.values())
            placement_in_force = dict(placement)
            replaced = False
            if (
                self.policy == POLICY_DYNAMIC
                and self.replace_on_major
                and majors
                and period < self.trace.n_periods
            ):
                new_report = self.fleet_advisor.recommend_incremental(
                    problem, placement, moved=majors
                )
                new_placement = dict(new_report.placement)
                new_loads = self._machine_loads(new_placement)
                for machine_index, indices in new_loads.items():
                    if loads.get(machine_index) != indices:
                        managers[machine_index] = self._make_manager(
                            problem, machine_index, indices
                        )
                for machine_index in set(loads) - set(new_loads):
                    managers.pop(machine_index, None)
                replaced = True
                placement = new_placement
                loads = new_loads

            periods.append(
                ReplayPeriod(
                    period=period,
                    placement=placement_in_force,
                    allocations=allocations,
                    change_classes=change_classes,
                    model_actions=model_actions,
                    estimated_costs=estimated,
                    actual_costs=actual_costs,
                    default_cost=default_cost,
                    actual_cost=in_force_cost,
                    improvement_over_default=relative_improvement(
                        default_cost, in_force_cost
                    ),
                    replaced=replaced,
                )
            )
        return ReplayReport(
            trace_name=self.trace.name,
            mode="fleet",
            policy=self.policy,
            periods=tuple(periods),
            cost_stats=_stats_delta(stats_before, inner.cache_stats()),
            wall_time_seconds=time.perf_counter() - started,
            backend=getattr(self.backend, "name", type(self.backend).__name__),
            jobs=self.backend.jobs,
        )
