"""Importing observed arrival logs as :class:`~repro.traces.WorkloadTrace`\\ s.

The trace generators in :mod:`repro.traces.generators` synthesize
workloads; this module goes the other way — from *observations*.  An
arrival log is the rawest record a serving tier produces: one timestamped
entry per request, optionally labeled with the tenant and statement it
belonged to (the same record shape
:meth:`repro.loadgen.ArrivalSchedule.to_records` emits).
:func:`from_arrival_log` aggregates those records into the advisor's
native time-varying input: per monitoring period, per tenant, the
observed statement *counts* become statement *frequencies*, and the
period-to-period changes become :class:`~repro.traces.TraceEvent`\\ s —
so a real request log can drive everything a synthetic trace can (replay,
dynamic management, fleet re-placement, and load generation again).

The transform is the inverse of
:func:`repro.loadgen.schedule_from_trace` up to its rounding: rendering a
trace to an arrival schedule and importing the schedule's records back
recovers the trace's effective per-period frequencies (the round-trip the
tests pin down).  Periods in which a tenant is silent are kept as
near-zero intensity (:data:`IDLE_INTENSITY`) rather than dropped — a
tenant going quiet is workload information, and the trace model requires
positive intensities and non-empty mixes.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..exceptions import ConfigurationError
from .model import TenantTrace, TraceEvent, WorkloadTrace

__all__ = ["from_arrival_log", "IDLE_INTENSITY"]

#: Intensity assigned to a period in which a tenant produced no arrivals.
#: The trace model forbids zero (a tenant with no workload would be
#: unplaceable), so "silent" becomes "base mix at a thousandth".
IDLE_INTENSITY = 1e-3

#: Statement label for records that carry none.
_DEFAULT_STATEMENT = "q1"

#: Tenant label for records that carry none.
_DEFAULT_TENANT = "tenant-1"

RecordLike = Union[Mapping[str, Any], str, bytes]


def _parse_record(record: RecordLike, index: int) -> Tuple[float, str, str]:
    """One log entry -> (time, tenant, statement)."""
    if isinstance(record, (str, bytes)):
        try:
            record = json.loads(record)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"arrival-log record {index} is not valid JSON: {error}"
            ) from error
    if not isinstance(record, Mapping):
        raise ConfigurationError(
            f"arrival-log record {index} must be a mapping or JSON object, "
            f"got {type(record).__name__}"
        )
    if "time_seconds" not in record:
        raise ConfigurationError(
            f"arrival-log record {index} is missing the required "
            f"'time_seconds' key"
        )
    try:
        time_seconds = float(record["time_seconds"])
    except (TypeError, ValueError) as error:
        raise ConfigurationError(
            f"arrival-log record {index} has a non-numeric time: "
            f"{record['time_seconds']!r}"
        ) from error
    if time_seconds < 0:
        raise ConfigurationError(
            f"arrival-log record {index} has a negative time: {time_seconds}"
        )
    tenant = str(record.get("tenant") or _DEFAULT_TENANT)
    statement = str(record.get("statement") or _DEFAULT_STATEMENT)
    return time_seconds, tenant, statement


def _mix(counts: Mapping[str, int], requests_per_intensity: float) -> Tuple[Tuple[str, float], ...]:
    return tuple(
        (statement, counts[statement] / requests_per_intensity)
        for statement in sorted(counts)
    )


def from_arrival_log(
    records: Iterable[RecordLike],
    name: str = "arrival-log",
    period_seconds: float = 60.0,
    requests_per_intensity: float = 1.0,
    tenant_options: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> WorkloadTrace:
    """Aggregate timestamped request records into a workload trace.

    Args:
        records: the log — an iterable of mappings (or JSON-line
            strings), each with ``time_seconds`` and optional ``tenant``
            / ``statement`` labels; unlabeled records fall into a single
            default tenant and statement.  Order does not matter.
        name: the resulting trace's name.
        period_seconds: monitoring-period length the log is bucketed
            into (also the resulting trace's ``period_seconds``).
        requests_per_intensity: how many observed requests equal one
            unit of statement frequency — the same knob
            :func:`repro.loadgen.schedule_from_trace` renders with, so
            a round-trip uses the same value on both sides.
        tenant_options: optional per-tenant extra
            :class:`~repro.api.scenario.TenantSpec` fields (``engine``,
            ``benchmark``, ``scale``, ...) keyed by tenant name; unknown
            tenants in the mapping are rejected.

    Returns:
        A :class:`~repro.traces.WorkloadTrace` whose effective per-period
        statement frequencies equal the observed per-period counts
        divided by ``requests_per_intensity``.
    """
    if period_seconds <= 0:
        raise ConfigurationError(
            f"period_seconds must be positive, got {period_seconds}"
        )
    if requests_per_intensity <= 0:
        raise ConfigurationError(
            f"requests_per_intensity must be positive, "
            f"got {requests_per_intensity}"
        )

    # Bucket: tenant -> period index (0-based) -> statement -> count.
    observed: Dict[str, Dict[int, Dict[str, int]]] = {}
    last_time = 0.0
    total = 0
    for index, record in enumerate(records):
        time_seconds, tenant, statement = _parse_record(record, index)
        period = int(time_seconds // period_seconds)
        by_period = observed.setdefault(tenant, {})
        by_statement = by_period.setdefault(period, {})
        by_statement[statement] = by_statement.get(statement, 0) + 1
        last_time = max(last_time, time_seconds)
        total += 1
    if total == 0:
        raise ConfigurationError("arrival log is empty; nothing to import")
    n_periods = int(last_time // period_seconds) + 1

    if tenant_options:
        unknown = sorted(set(tenant_options) - set(observed))
        if unknown:
            raise ConfigurationError(
                f"tenant_options for unknown tenant(s) "
                f"{', '.join(map(repr, unknown))}; the log mentions "
                f"{', '.join(map(repr, sorted(observed)))}"
            )

    tenants: List[TenantTrace] = []
    for tenant_name in sorted(observed):
        by_period = observed[tenant_name]
        first_active = min(by_period)
        base_mix = _mix(by_period[first_active], requests_per_intensity)
        spec: Dict[str, Any] = {"name": tenant_name, "statements": base_mix}
        if tenant_options and tenant_name in tenant_options:
            spec.update(tenant_options[tenant_name])
        events: List[TraceEvent] = []
        # The state in force entering each period; events specify the
        # complete state, so only changes need an event.
        current: Optional[Tuple[Tuple[str, float], ...]] = (
            base_mix if first_active == 0 else None  # None = idle
        )
        for period in range(n_periods):
            counts = by_period.get(period)
            wanted = (
                _mix(counts, requests_per_intensity)
                if counts is not None
                else None
            )
            if wanted == current:
                continue
            if period == 0:
                # Base spec already covers an active period 0; an idle
                # period 0 needs an explicit idle event at t=0.
                if wanted is None:
                    events.append(
                        TraceEvent(time_seconds=0.0, intensity=IDLE_INTENSITY)
                    )
                    current = None
                continue
            start = period * period_seconds
            if wanted is None:
                events.append(
                    TraceEvent(time_seconds=start, intensity=IDLE_INTENSITY)
                )
            else:
                events.append(
                    TraceEvent(time_seconds=start, statements=wanted)
                )
            current = wanted
        tenants.append(TenantTrace(spec=spec, events=tuple(events)))

    return WorkloadTrace(
        name=name,
        tenants=tuple(tenants),
        period_seconds=period_seconds,
        n_periods=n_periods,
    )
