"""Workload traces: time-varying consolidation scenarios and their replay.

The paper's advisor configures static workloads; its §7.10 experiment shows
what happens when workloads *shift* — but only as one hard-coded script.
This package makes shifting workloads a first-class input:

* :mod:`repro.traces.model` — the data model: :class:`TraceEvent` /
  :class:`TenantTrace` / :class:`WorkloadTrace`, JSON round-trippable like
  :class:`~repro.api.Scenario` and :class:`~repro.fleet.FleetProblem`.
* :mod:`repro.traces.generators` — deterministic synthetic generators
  (``diurnal``, ``ramp``, ``spike``, ``step-shift``, ``tenant-swap``, and
  the paper's §7.10 schedule as ``sec710``).
* :mod:`repro.traces.arrival_log` — :func:`from_arrival_log`, importing
  observed timestamped request logs (one record per request, e.g. the
  records a :class:`repro.loadgen.ArrivalSchedule` renders) as traces.
* :mod:`repro.traces.replay` — :class:`TraceReplayer` (one machine driven
  through :class:`~repro.core.dynamic.DynamicConfigurationManager`) and
  :class:`FleetTraceReplayer` (per-machine managers plus incremental
  :class:`~repro.fleet.FleetAdvisor` re-placement on major changes), both
  emitting a serializable :class:`ReplayReport`.

Quick start::

    from repro.traces import TraceReplayer, sec710_schedule

    trace = sec710_schedule()                  # the paper's §7.10 schedule
    report = TraceReplayer(trace).replay()     # dynamic management
    print(report.cumulative_actual_cost)
    print(report.to_json(indent=2))
"""

from .arrival_log import IDLE_INTENSITY, from_arrival_log
from .generators import (
    GENERATORS,
    diurnal_trace,
    ramp_trace,
    sec710_schedule,
    spike_trace,
    step_shift_trace,
    tenant_swap_trace,
)
from .model import TenantTrace, TraceEvent, WorkloadTrace
from .replay import (
    POLICIES,
    POLICY_CONTINUOUS,
    POLICY_DYNAMIC,
    POLICY_STATIC,
    FleetTraceReplayer,
    ReplayPeriod,
    ReplayReport,
    TraceReplayer,
)

__all__ = [
    "GENERATORS",
    "IDLE_INTENSITY",
    "from_arrival_log",
    "POLICIES",
    "POLICY_CONTINUOUS",
    "POLICY_DYNAMIC",
    "POLICY_STATIC",
    "FleetTraceReplayer",
    "ReplayPeriod",
    "ReplayReport",
    "TenantTrace",
    "TraceEvent",
    "TraceReplayer",
    "WorkloadTrace",
    "diurnal_trace",
    "ramp_trace",
    "sec710_schedule",
    "spike_trace",
    "step_shift_trace",
    "tenant_swap_trace",
]
