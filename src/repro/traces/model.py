"""Timestamped workload traces: time-varying consolidation scenarios as data.

Every workload in the reproduction so far is a *static* statement mix; the
paper's only time-varying setting (the §7.10 dynamic-management experiment)
was a fixed nine-period script baked into :mod:`repro.experiments.dynamic`.
This module makes the time dimension first-class:

* :class:`TraceEvent` — one timestamped change to a tenant's workload: a
  new arrival-rate *intensity* and, optionally, a new statement mix (with a
  different benchmark/scale, e.g. a TPC-H slot starting to serve TPC-C).
* :class:`TenantTrace` — one tenant's base :class:`~repro.api.scenario.TenantSpec`
  plus its ordered events; sampling it at a time yields the effective spec.
* :class:`WorkloadTrace` — named tenants × events over a common monitoring
  period length, JSON round-trippable (``from_dict`` / ``from_json`` /
  ``to_dict`` / ``to_json``) in the same style as
  :class:`~repro.api.Scenario` and :class:`~repro.fleet.FleetProblem`, so
  whole shifting-workload scenarios can live in files or cross a service
  boundary.

Semantics: a trace is a step function.  An event specifies the tenant's
*complete* workload state from its timestamp onward — fields left unset
fall back to the tenant's base spec, not to the previous event — and the
state in force during monitoring period ``p`` is the state at the period's
start.  Intensity scales every statement frequency of the mix in force,
which models an arrival-rate change without changing the queries (the
paper's "intensity only" change class).

Traces are plain data; generators live in :mod:`repro.traces.generators`
and replay in :mod:`repro.traces.replay`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..api.scenario import TenantSpec, _normalize_statement
from ..exceptions import ConfigurationError
from ..workloads.workload import DEFAULT_MONITORING_INTERVAL_SECONDS


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped change to a tenant's workload.

    Attributes:
        time_seconds: when the change takes effect, in seconds since the
            start of the trace.
        intensity: arrival-rate multiplier applied to every statement
            frequency of the mix in force (1.0 = the mix as written).
        statements: optional replacement statement mix (same spellings as
            :class:`~repro.api.scenario.TenantSpec`); ``None`` keeps the
            tenant's base statements.
        benchmark / scale: optional replacement benchmark / scale for the
            new mix (e.g. switching a slot from TPC-H to TPC-C transactions);
            ``None`` keeps the base spec's values.
    """

    time_seconds: float
    intensity: float = 1.0
    statements: Optional[Tuple[Tuple[str, float], ...]] = None
    benchmark: Optional[str] = None
    scale: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time_seconds < 0:
            raise ConfigurationError(
                f"trace event time must not be negative, got {self.time_seconds}"
            )
        if self.intensity <= 0:
            raise ConfigurationError(
                f"trace event intensity must be positive, got {self.intensity}"
            )
        if self.statements is not None:
            if not self.statements:
                raise ConfigurationError(
                    "a trace event's statement mix must not be empty "
                    "(omit 'statements' to keep the base mix)"
                )
            normalized = tuple(
                _normalize_statement(statement) for statement in self.statements
            )
            object.__setattr__(self, "statements", normalized)
        if self.scale is not None:
            object.__setattr__(self, "scale", float(self.scale))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Build an event from a plain dictionary."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown trace-event option(s) {', '.join(map(repr, unknown))}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        if "time_seconds" not in data:
            raise ConfigurationError(
                f"trace event {dict(data)!r} is missing the required "
                f"'time_seconds' key"
            )
        statements = data.get("statements")
        return cls(
            time_seconds=data["time_seconds"],
            intensity=data.get("intensity", 1.0),
            statements=None if statements is None else tuple(statements),
            benchmark=data.get("benchmark"),
            scale=data.get("scale"),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The event as a JSON-safe dictionary (round-trips via from_dict)."""
        return {
            "time_seconds": self.time_seconds,
            "intensity": self.intensity,
            "statements": (
                None
                if self.statements is None
                else [[query, frequency] for query, frequency in self.statements]
            ),
            "benchmark": self.benchmark,
            "scale": self.scale,
        }


EventLike = Union[TraceEvent, Mapping[str, Any]]


def _coerce_event(event: EventLike) -> TraceEvent:
    if isinstance(event, TraceEvent):
        return event
    return TraceEvent.from_dict(event)


@dataclass(frozen=True)
class TenantTrace:
    """One tenant's base workload spec plus its timeline of changes.

    Attributes:
        spec: the tenant's base :class:`~repro.api.scenario.TenantSpec` —
            the state in force before the first event (and the source of
            any field an event leaves unset).
        events: the tenant's changes, in strictly increasing time order.
    """

    spec: TenantSpec
    events: Tuple[TraceEvent, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.spec, TenantSpec):
            object.__setattr__(self, "spec", TenantSpec.from_dict(self.spec))
        events = tuple(_coerce_event(event) for event in self.events)
        for earlier, later in zip(events, events[1:]):
            if later.time_seconds <= earlier.time_seconds:
                raise ConfigurationError(
                    f"tenant {self.spec.name!r}: trace events must have "
                    f"strictly increasing times (got {later.time_seconds} "
                    f"after {earlier.time_seconds})"
                )
        object.__setattr__(self, "events", events)

    @property
    def name(self) -> str:
        """Name of the underlying tenant spec."""
        return self.spec.name

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def event_at(self, time_seconds: float) -> Optional[TraceEvent]:
        """The event in force at a time (the last one at or before it)."""
        current = None
        for event in self.events:
            if event.time_seconds > time_seconds:
                break
            current = event
        return current

    def spec_at(self, time_seconds: float) -> TenantSpec:
        """The effective tenant spec at a time.

        The mix in force (the base spec's, unless the current event
        replaces it) has every statement frequency multiplied by the
        current intensity; benchmark and scale follow the event when set.
        The tenant's name, engine, and QoS settings never change.
        """
        event = self.event_at(time_seconds)
        if event is None:
            return self.spec
        statements = (
            event.statements if event.statements is not None else self.spec.statements
        )
        scaled = tuple(
            (query, frequency * event.intensity) for query, frequency in statements
        )
        return replace(
            self.spec,
            statements=scaled,
            benchmark=event.benchmark if event.benchmark is not None else self.spec.benchmark,
            scale=event.scale if event.scale is not None else self.spec.scale,
        )

    def last_event_time(self) -> float:
        """Time of the final event (0.0 for an event-free tenant)."""
        return self.events[-1].time_seconds if self.events else 0.0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantTrace":
        """Build a tenant trace from a flat dictionary.

        The dictionary is the tenant's :class:`TenantSpec` fields plus an
        optional ``events`` list, i.e. a flat structure convenient to
        write by hand::

            {"name": "oltp", "engine": "db2", "statements": [["q18", 5.0]],
             "events": [{"time_seconds": 1800, "intensity": 2.0}]}
        """
        data = dict(data)
        events = data.pop("events", ())
        return cls(spec=TenantSpec.from_dict(data), events=tuple(events))

    def to_dict(self) -> Dict[str, Any]:
        """The tenant trace as a JSON-safe dictionary."""
        document = self.spec.to_dict()
        document["events"] = [event.to_dict() for event in self.events]
        return document


TenantTraceLike = Union[TenantTrace, Mapping[str, Any]]


def _coerce_tenant_trace(tenant: TenantTraceLike) -> TenantTrace:
    if isinstance(tenant, TenantTrace):
        return tenant
    return TenantTrace.from_dict(tenant)


@dataclass(frozen=True)
class WorkloadTrace:
    """A complete shifting-workload scenario: tenants × timestamped events.

    Attributes:
        name: trace identifier (used in reports and filenames).
        tenants: the traced tenants (unique names).
        period_seconds: length of one monitoring period; the state in
            force during period ``p`` (1-based) is each tenant's state at
            the period's start, ``(p - 1) * period_seconds``.
        n_periods: how many periods a replay of the trace covers; derived
            from the last event when omitted (every event gets a period in
            which it is in force).
    """

    name: str
    tenants: Tuple[TenantTrace, ...]
    period_seconds: float = DEFAULT_MONITORING_INTERVAL_SECONDS
    n_periods: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("trace name must be non-empty")
        if self.period_seconds <= 0:
            raise ConfigurationError(
                f"period_seconds must be positive, got {self.period_seconds}"
            )
        tenants = tuple(_coerce_tenant_trace(tenant) for tenant in self.tenants)
        if not tenants:
            raise ConfigurationError("a workload trace needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise ConfigurationError(
                f"duplicate traced tenant name(s): {', '.join(map(repr, duplicates))}"
            )
        object.__setattr__(self, "tenants", tenants)
        if self.n_periods is None:
            last = max(tenant.last_event_time() for tenant in tenants)
            object.__setattr__(
                self, "n_periods", int(last // self.period_seconds) + 1
            )
        elif self.n_periods < 1:
            raise ConfigurationError(
                f"n_periods must be at least 1, got {self.n_periods}"
            )

    # ------------------------------------------------------------------
    # Introspection / sampling
    # ------------------------------------------------------------------
    @property
    def n_tenants(self) -> int:
        """Number of traced tenants."""
        return len(self.tenants)

    def tenant_names(self) -> List[str]:
        """Tenant names in trace order."""
        return [tenant.name for tenant in self.tenants]

    def tenant(self, name: str) -> TenantTrace:
        """The trace of the named tenant."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(name)

    def period_start(self, period: int) -> float:
        """Start time of a (1-based) monitoring period."""
        if not 1 <= period <= self.n_periods:
            raise ConfigurationError(
                f"period must be in [1, {self.n_periods}], got {period}"
            )
        return (period - 1) * self.period_seconds

    def specs_at_period(self, period: int) -> Tuple[TenantSpec, ...]:
        """The effective tenant specs in force during one period."""
        start = self.period_start(period)
        return tuple(tenant.spec_at(start) for tenant in self.tenants)

    def periods(self) -> List[Tuple[int, Tuple[TenantSpec, ...]]]:
        """``(period, effective specs)`` for every period of the trace."""
        return [
            (period, self.specs_at_period(period))
            for period in range(1, self.n_periods + 1)
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadTrace":
        """Build a workload trace from a plain dictionary."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown trace option(s) {', '.join(map(repr, unknown))}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        return cls(
            name=data.get("name", "trace"),
            tenants=tuple(data.get("tenants", ())),
            period_seconds=data.get(
                "period_seconds", DEFAULT_MONITORING_INTERVAL_SECONDS
            ),
            n_periods=data.get("n_periods"),
        )

    @classmethod
    def from_json(cls, document: Union[str, bytes]) -> "WorkloadTrace":
        """Build a workload trace from a JSON document."""
        return cls.from_dict(json.loads(document))

    def to_dict(self) -> Dict[str, Any]:
        """The trace as a JSON-safe dictionary (round-trips via from_dict)."""
        return {
            "name": self.name,
            "period_seconds": self.period_seconds,
            "n_periods": self.n_periods,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The trace as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def with_tenants(self, tenants: Sequence[TenantTraceLike]) -> "WorkloadTrace":
        """A copy of the trace over a different tenant list."""
        return replace(self, tenants=tuple(tenants))
