"""Solve-pipeline telemetry: structured tracing and a metrics registry.

Two independent, zero-dependency layers:

* :mod:`repro.telemetry.trace` — a :class:`Tracer` producing nested
  :class:`Span`\\ s with thread-local context propagation across every
  solver backend, emitting completed traces to pluggable sinks (an
  in-memory ring the HTTP server reads for ``GET /trace/<id>``, plus an
  optional JSONL file).  Off by default; a disabled tracer is a no-op.
* :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms in a process-wide :class:`MetricsRegistry` with
  Prometheus-text exposition (``GET /metrics``).  Always on.

Neither layer ever touches an answer: spans and metrics observe the
pipeline, and nothing here enters any report's ``canonical_dict()``.
"""

from .metrics import (
    LATENCY_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    quantile_from_buckets,
)
from .trace import (
    InMemorySink,
    JsonlSink,
    Span,
    Tracer,
    configure_tracing,
    disable_tracing,
    format_profile,
    get_tracer,
    leaf_wall_fraction,
    span_table,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "LATENCY_BUCKETS",
    "get_registry",
    "quantile_from_buckets",
    "InMemorySink",
    "JsonlSink",
    "Span",
    "Tracer",
    "configure_tracing",
    "disable_tracing",
    "format_profile",
    "get_tracer",
    "leaf_wall_fraction",
    "span_table",
]
