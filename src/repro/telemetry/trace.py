"""Zero-dependency structured tracing for the solve pipeline.

A :class:`Tracer` produces nested :class:`Span`\\ s — name, wall and CPU
time, free-form attributes, timestamped events — and emits every
*completed* trace (the tree under a root span) to pluggable sinks: an
in-memory ring buffer the HTTP server reads for ``GET /trace/<id>``, and
an optional :class:`JsonlSink` appending one JSON document per trace.

Design rules, in priority order:

* **Pay for what you use.**  A disabled tracer's :meth:`Tracer.span` is
  a single attribute lookup returning a shared no-op span; none of the
  instrumentation sites allocate anything until tracing is enabled.
* **Never touch the answer.**  Spans observe solves; they are not part
  of any report and can never enter ``canonical_dict()``.
* **Context survives the backends.**  The current span lives in
  thread-local storage; :meth:`Tracer.bind` re-homes a callable under
  the submitting thread's span so thread/asyncio pool workers attach
  their spans to the right parent, and process workers record their own
  subtree under :meth:`Tracer.capture` and ship it back with the result
  (grafted by :meth:`Tracer.graft`), the same way cache-call statistics
  merge today.

Span trees are kept deliberately coarse: hot inner loops (the
branch-and-bound search, the greedy probe rounds) run under a single
``leaf=True`` span that *suppresses* descendant spans and records
periodic :meth:`Span.event`\\ s instead — a 150k-node search must not
allocate 150k spans.  That is also what makes the tree's accounting
meaningful: leaf spans wrap contiguous work, so their wall time tiles
the root's (see :func:`leaf_wall_fraction`).
"""

from __future__ import annotations

import io
import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional

from ..exceptions import TelemetryError

__all__ = [
    "Span",
    "Tracer",
    "InMemorySink",
    "JsonlSink",
    "get_tracer",
    "configure_tracing",
    "disable_tracing",
    "leaf_wall_fraction",
    "span_table",
    "format_profile",
]

#: How many completed traces the tracer's ring buffer retains.
DEFAULT_RING_SIZE = 64


class _NoopSpan:
    """The span handed out when tracing is off (or suppressed): does nothing.

    A single shared instance; every method is a no-op so call sites never
    branch on whether tracing is enabled.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    @property
    def recording(self) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed phase of a trace: name, attributes, events, children.

    Spans are context managers::

        with tracer.span("fleet.recommend", tenants=12) as span:
            ...
            span.set_attribute("evaluations", stats.evaluations)

    Wall time comes from :func:`time.perf_counter`, CPU time from
    :func:`time.thread_time` (the executing thread's CPU clock — spans
    never span threads; cross-thread work gets its own span via
    :meth:`Tracer.bind`).  Mutation is single-threaded by construction
    (a span is current on exactly one thread) except child attachment,
    which the tracer serializes under its lock.
    """

    __slots__ = (
        "name",
        "tracer",
        "parent",
        "span_id",
        "trace_id",
        "leaf",
        "attributes",
        "events",
        "children",
        "start_unix",
        "_perf_start",
        "_cpu_start",
        "wall_seconds",
        "cpu_seconds",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional["Span"],
        span_id: int,
        trace_id: str,
        leaf: bool = False,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.parent = parent
        self.span_id = span_id
        self.trace_id = trace_id
        self.leaf = leaf
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []
        self.start_unix = time.time()
        self._perf_start = time.perf_counter()
        self._cpu_start = time.thread_time()
        self.wall_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None

    # -- recording -----------------------------------------------------
    @property
    def recording(self) -> bool:
        return True

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def event(self, name: str, **fields: Any) -> None:
        """Record a timestamped point event on this span.

        This is the progress channel for ``leaf=True`` spans wrapping hot
        loops (e.g. the branch-and-bound search emits ``progress`` events
        with node/incumbent counts instead of per-node spans).
        """
        self.events.append(
            {
                "name": name,
                "elapsed_seconds": time.perf_counter() - self._perf_start,
                **fields,
            }
        )

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.end()
        return False

    def end(self) -> None:
        if self.wall_seconds is None:
            self.wall_seconds = time.perf_counter() - self._perf_start
            self.cpu_seconds = time.thread_time() - self._cpu_start
        self.tracer._pop(self)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe tree rooted at this span (children recursively)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "start_unix": self.start_unix,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.events:
            data["events"] = list(self.events)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data


class InMemorySink:
    """A bounded ring of recent completed traces, addressable by id."""

    def __init__(self, max_traces: int = DEFAULT_RING_SIZE) -> None:
        if max_traces < 1:
            raise TelemetryError(f"max_traces must be >= 1, got {max_traces}")
        self.max_traces = max_traces
        self._traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def emit(self, trace: Dict[str, Any]) -> None:
        with self._lock:
            self._traces[trace["trace_id"]] = trace
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._traces.get(trace_id)

    def trace_ids(self) -> List[str]:
        """Retained trace ids, most recent last."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class JsonlSink:
    """Appends one JSON document per completed trace to a file.

    The path is opened eagerly so a misconfigured ``--trace-out`` fails at
    setup with a :class:`~repro.exceptions.TelemetryError` (a
    :class:`~repro.exceptions.ReproError`, so the CLI's error path prints
    it cleanly) instead of surfacing a raw :class:`OSError` mid-solve.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        try:
            self._handle: Optional[io.TextIOWrapper] = open(
                self.path, "a", encoding="utf-8"
            )
        except OSError as error:
            raise TelemetryError(
                f"cannot open trace output file {self.path!r}: {error}"
            ) from error
        self._lock = threading.Lock()

    def emit(self, trace: Dict[str, Any]) -> None:
        line = json.dumps(trace, sort_keys=True)
        with self._lock:
            if self._handle is None:
                return
            try:
                self._handle.write(line + "\n")
                self._handle.flush()
            except OSError as error:
                raise TelemetryError(
                    f"cannot write trace to {self.path!r}: {error}"
                ) from error

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class _Capture:
    """Context manager recording a subtree for shipping (process workers).

    Forces recording on for the current thread regardless of the global
    enable flag, roots a fresh span, and — instead of emitting to sinks —
    stores the completed tree on :attr:`trace` for the caller to return
    with its result (the parent grafts it; see :meth:`Tracer.graft`).
    """

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_prev_enabled", "trace")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None
        self._prev_enabled = False
        self.trace: Optional[Dict[str, Any]] = None

    def __enter__(self) -> "_Capture":
        tracer = self._tracer
        self._prev_enabled = tracer.enabled
        tracer.enabled = True
        tracer._local.capturing = True
        self._span = tracer._start_span(
            self._name, leaf=False, attributes=self._attributes, capture=True
        )
        tracer._push(self._span)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        tracer = self._tracer
        span = self._span
        try:
            if span is not None:
                if exc_type is not None:
                    span.attributes.setdefault("error", exc_type.__name__)
                span.end()
                self.trace = span.to_dict()
        finally:
            tracer._local.capturing = False
            tracer.enabled = self._prev_enabled
        return False


class Tracer:
    """Produces spans, tracks the current one per thread, emits traces.

    ``enabled`` gates everything: while ``False`` (the default for the
    process-wide tracer), :meth:`span` returns the shared no-op span and
    :meth:`bind` returns its argument unchanged.
    """

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE) -> None:
        self.enabled = False
        self.ring = InMemorySink(ring_size)
        self._sinks: List[Any] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._capturing = 0

    # -- configuration -------------------------------------------------
    def enable(self, *sinks: Any) -> None:
        """Turn tracing on, optionally attaching extra sinks to the ring."""
        with self._lock:
            for sink in sinks:
                self._sinks.append(sink)
            self.enabled = True

    def disable(self) -> None:
        """Turn tracing off and detach (closing, where supported) all sinks."""
        with self._lock:
            self.enabled = False
            sinks, self._sinks = self._sinks, []
        for sink in sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # -- the current-span stack ----------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit: drop through to it
            del stack[stack.index(span) :]
        if span.parent is None:
            self._finish(span)

    # -- span creation -------------------------------------------------
    def span(self, name: str, leaf: bool = False, **attributes: Any):
        """A new span under the current one (context manager).

        Returns the no-op span when tracing is disabled, or when the
        current span is a ``leaf=True`` region (hot loops suppress
        descendant spans; see the module docstring).
        """
        if not self.enabled:
            return NOOP_SPAN
        current = self.current
        if current is not None and current.leaf:
            return NOOP_SPAN
        return self._start_span(name, leaf=leaf, attributes=attributes)

    def _start_span(
        self,
        name: str,
        leaf: bool,
        attributes: Dict[str, Any],
        capture: bool = False,
    ) -> Span:
        parent = None if capture else self.current
        with self._lock:
            span_id = next(self._ids)
        if parent is None:
            trace_id = f"{os.getpid():x}-{span_id:x}"
        else:
            trace_id = parent.trace_id
        span = Span(
            tracer=self,
            name=name,
            parent=parent,
            span_id=span_id,
            trace_id=trace_id,
            leaf=leaf,
            attributes=attributes,
        )
        if parent is not None:
            with self._lock:
                parent.children.append(span)
        return span

    def _finish(self, root: Span) -> None:
        """A root span ended: emit its completed trace to every sink."""
        if getattr(self._local, "capturing", False):
            return  # captured subtrees ship with results, not to sinks
        from .instruments import TRACES_EMITTED

        trace = root.to_dict()
        self.ring.emit(trace)
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            sink.emit(trace)
        TRACES_EMITTED.inc()

    # -- cross-backend propagation -------------------------------------
    def bind(self, call: Callable[[], Any]) -> Callable[[], Any]:
        """Re-home ``call`` under the submitting thread's current span.

        Thread-pool workers (thread/asyncio backends) have an empty span
        stack; binding at submission captures the submitter's current
        span so worker-side spans attach to the right parent.  Returns
        ``call`` unchanged when there is nothing to propagate.
        """
        if not self.enabled:
            return call
        parent = self.current
        if parent is None:
            return call

        def bound() -> Any:
            saved = getattr(self._local, "stack", None)
            self._local.stack = [parent]
            try:
                return call()
            finally:
                self._local.stack = saved if saved is not None else []

        return bound

    def capture(self, name: str, **attributes: Any) -> _Capture:
        """Record a subtree for shipping back with a result (worker side).

        Process workers cannot share the parent's span objects; they wrap
        the solve in ``capture`` — which forces recording on for this
        thread even if the worker never enabled tracing — and return
        ``cap.trace`` alongside the result, exactly as worker-side
        :class:`~repro.api.report.CostCallStats` travel today.
        """
        return _Capture(self, name, attributes)

    def graft(self, trace: Optional[Dict[str, Any]]) -> None:
        """Attach a shipped span subtree under the current span (parent side)."""
        if trace is None or not self.enabled:
            return
        current = self.current
        if current is None or current.leaf:
            return
        grafted = dict(trace)
        grafted["trace_id"] = current.trace_id
        grafted.setdefault("attributes", {})["shipped"] = True
        with self._lock:
            current.children.append(_GraftedSpan(grafted))


class _GraftedSpan:
    """A pre-serialized child subtree (shipped from a process worker)."""

    __slots__ = ("_data",)

    def __init__(self, data: Dict[str, Any]) -> None:
        self._data = data

    def to_dict(self) -> Dict[str, Any]:
        return self._data


#: The process-wide tracer every instrumentation site uses.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until :func:`configure_tracing`)."""
    return _TRACER


def configure_tracing(
    trace_out: Optional[str] = None, ring_size: Optional[int] = None
) -> Tracer:
    """Enable the process-wide tracer; optionally attach a JSONL file sink.

    Raises :class:`~repro.exceptions.TelemetryError` (never a raw
    :class:`OSError`) when ``trace_out`` cannot be opened for append.
    """
    tracer = get_tracer()
    if ring_size is not None:
        tracer.ring = InMemorySink(ring_size)
    sinks = [JsonlSink(trace_out)] if trace_out else []
    tracer.enable(*sinks)
    return tracer


def disable_tracing() -> None:
    """Disable the process-wide tracer and close its file sinks."""
    get_tracer().disable()


# ----------------------------------------------------------------------
# Trace analysis (the --profile table and the leaf-coverage accounting)
# ----------------------------------------------------------------------
def _walk(span: Dict[str, Any]):
    yield span
    for child in span.get("children", ()):
        yield from _walk(child)


def leaf_wall_fraction(trace: Dict[str, Any]) -> float:
    """The fraction of the root's wall time covered by leaf spans.

    Leaf spans (no children) wrap contiguous work; summing their wall
    time against the root's answers "how much of this trace is
    accounted for?".  Parallel backends can push this above 1.0 (leaves
    on concurrent threads overlap the root's wall clock).
    """
    root_wall = trace.get("wall_seconds") or 0.0
    if root_wall <= 0.0:
        return 0.0
    leaf_wall = sum(
        span.get("wall_seconds") or 0.0
        for span in _walk(trace)
        if not span.get("children")
    )
    return leaf_wall / root_wall


def span_table(trace: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-span-name aggregates over a trace: count, wall and CPU totals.

    Rows are sorted by total wall time, descending — the shape of the
    CLI's ``--profile`` breakdown.
    """
    rows: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    for span in _walk(trace):
        row = rows.setdefault(
            span["name"],
            {"name": span["name"], "count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0},
        )
        row["count"] += 1
        row["wall_seconds"] += span.get("wall_seconds") or 0.0
        row["cpu_seconds"] += span.get("cpu_seconds") or 0.0
    return sorted(rows.values(), key=lambda row: -row["wall_seconds"])


def format_profile(trace: Dict[str, Any]) -> str:
    """The ``--profile`` table: phase, count, wall, CPU, share of root."""
    root_wall = trace.get("wall_seconds") or 0.0
    lines = [
        f"{'phase':<28} {'count':>6} {'wall_s':>10} {'cpu_s':>10} {'share':>7}"
    ]
    lines.append("-" * len(lines[0]))
    for row in span_table(trace):
        share = row["wall_seconds"] / root_wall if root_wall > 0 else 0.0
        lines.append(
            f"{row['name']:<28} {row['count']:>6} "
            f"{row['wall_seconds']:>10.4f} {row['cpu_seconds']:>10.4f} "
            f"{share:>6.1%}"
        )
    return "\n".join(lines)
