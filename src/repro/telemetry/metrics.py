"""A process-wide metrics registry with Prometheus-text exposition.

Counters, gauges, and fixed-bucket histograms, zero dependencies.  Every
instrument is a *family* — a metric name plus a fixed tuple of label
names — whose labeled children hold the actual values::

    REQUESTS = REGISTRY.counter(
        "repro_requests_total", "Requests served.", labelnames=("endpoint",)
    )
    REQUESTS.labels(endpoint="fleet").inc()

A family with no label names acts as its own single child (``inc`` /
``set`` / ``observe`` directly on it).  All updates are lock-guarded per
family, so concurrent solver threads produce exact totals; hot call
sites bind their child once at import time (``labels()`` is memoized) so
an update is one lock acquisition and one addition.

:func:`MetricsRegistry.render` emits the standard Prometheus text
format (``text/plain; version=0.0.4``) with families and children in
sorted order — deterministic output for tests and diffing.  Metrics are
always on: unlike tracing there is no enable switch, because the
instruments live on paths where one counter bump is noise (a solve, a
request, a memo lookup — never the per-allocation cost inner loop).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "quantile_from_buckets",
    "LATENCY_BUCKETS",
]

#: Upper bounds (seconds) shared by every latency histogram: sub-ms
#: memo-served probes up through multi-second exact searches.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_METRIC_KINDS = ("counter", "gauge", "histogram")


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def quantile_from_buckets(
    cumulative: Sequence[Tuple[float, int]], q: float
) -> Optional[float]:
    """Estimate the ``q``-quantile from cumulative ``(bound, count)`` pairs.

    The estimator every latency SLI in the system shares: it works on the
    exposition-format data — cumulative bucket counts with ascending upper
    bounds, ``+Inf`` last — so it applies equally to a live
    :class:`Histogram`, a scraped ``/metrics`` family, or the *difference*
    of two scrapes (a load step's server-side latency).  Linear
    interpolation within the bucket that crosses the target rank, with the
    first bucket anchored at 0 (every instrumented quantity here is
    non-negative).  A rank landing in the ``+Inf`` bucket clamps to the
    highest finite bound (the standard Prometheus behaviour), and an empty
    histogram has no quantiles (``None``).
    """
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1], got {q}")
    if not cumulative:
        return None
    total = cumulative[-1][1]
    if total <= 0:
        return None
    rank = q * total
    lower_bound = 0.0
    previous_count = 0
    for bound, count in cumulative:
        if count >= rank and count > previous_count:
            if bound == math.inf:
                # No finite upper edge to interpolate toward: clamp.
                return lower_bound
            in_bucket = count - previous_count
            fraction = (rank - previous_count) / in_bucket
            return lower_bound + (bound - lower_bound) * max(0.0, fraction)
        if bound != math.inf:
            lower_bound = bound
        previous_count = count
    return lower_bound


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Child:
    """Shared plumbing for one labeled child of a metric family."""

    __slots__ = ("_family", "_labelvalues")

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        self._family = family
        self._labelvalues = labelvalues


class Counter(_Child):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        super().__init__(family, labelvalues)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self._family.name!r} cannot decrease (inc({amount}))"
            )
        with self._family._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._family._lock:
            return self._value

    def _samples(self) -> List[Tuple[str, str, float]]:
        suffix = _label_suffix(self._family.labelnames, self._labelvalues)
        return [(self._family.name, suffix, self.value)]


class Gauge(_Child):
    """A value that can go up and down — or track a live callback."""

    __slots__ = ("_value", "_callback")

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        super().__init__(family, labelvalues)
        self._value = 0.0
        self._callback: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._family._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, callback: Callable[[], float]) -> None:
        """Read ``callback()`` at exposition time instead of a stored value.

        The bridge for values other objects already track (e.g. the fleet
        solve-memo's hit ratio): the registry stays the single scrape
        surface without double-counting state.
        """
        with self._family._lock:
            self._callback = callback

    @property
    def value(self) -> float:
        with self._family._lock:
            callback = self._callback
            if callback is None:
                return self._value
        return float(callback())

    def _samples(self) -> List[Tuple[str, str, float]]:
        suffix = _label_suffix(self._family.labelnames, self._labelvalues)
        return [(self._family.name, suffix, self.value)]


class Histogram(_Child):
    """Observations bucketed by fixed upper bounds (plus ``+Inf``)."""

    __slots__ = ("_counts", "_sum", "_count")

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        super().__init__(family, labelvalues)
        self._counts = [0] * (len(family.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._family.buckets, value)
        with self._family._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._family._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._family._lock:
            return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ``+Inf`` last.

        Cumulative by construction, so counts are monotonically
        non-decreasing across ascending bounds.
        """
        with self._family._lock:
            counts = list(self._counts)
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip((*self._family.buckets, math.inf), counts):
            running += count
            cumulative.append((bound, running))
        return cumulative

    def quantile(self, q: float) -> Optional[float]:
        """The estimated ``q``-quantile of the observations so far.

        Cumulative-bucket linear interpolation via
        :func:`quantile_from_buckets`; ``None`` while the histogram is
        empty.  Resolution is bounded by the bucket layout — the estimate
        is exact only at bucket edges — which is the trade every
        fixed-bucket SLI makes.
        """
        return quantile_from_buckets(self.bucket_counts(), q)

    def _samples(self) -> List[Tuple[str, str, float]]:
        family = self._family
        names = family.labelnames
        samples: List[Tuple[str, str, float]] = []
        for bound, count in self.bucket_counts():
            suffix = _label_suffix(
                (*names, "le"), (*self._labelvalues, _format_value(bound))
            )
            samples.append((family.name + "_bucket", suffix, float(count)))
        suffix = _label_suffix(names, self._labelvalues)
        samples.append((family.name + "_sum", suffix, self.sum))
        samples.append((family.name + "_count", suffix, float(self.count)))
        return samples


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One metric name: kind, help text, label names, labeled children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = (),
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labelvalues: Any) -> Any:
        """The child for one label-value combination (memoized)."""
        if set(labelvalues) != set(self.labelnames):
            raise TelemetryError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _CHILD_TYPES[self.kind](self, key)
                self._children[key] = child
            return child

    def _default_child(self) -> Any:
        if self.labelnames:
            raise TelemetryError(
                f"metric {self.name!r} has labels {list(self.labelnames)}; "
                f"use .labels(...) to pick a child"
            )
        return self.labels()

    # Unlabeled families act as their own child.
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def set_function(self, callback: Callable[[], float]) -> None:
        self._default_child().set_function(callback)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        return self._default_child().bucket_counts()

    def quantile(self, q: float) -> Optional[float]:
        return self._default_child().quantile(q)

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for _key, child in self.children():
            for name, suffix, value in child._samples():
                lines.append(f"{name}{suffix} {_format_value(value)}")
        return lines


class MetricsRegistry:
    """Creates and renders metric families; process-wide via :data:`REGISTRY`.

    Registration is idempotent — asking for an existing name returns the
    existing family — but re-registering under a different kind, label
    set, or bucket layout raises :class:`~repro.exceptions.TelemetryError`
    (two call sites disagreeing about a metric is a bug, not a race to
    win).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Iterable[str],
        buckets: Tuple[float, ...] = (),
    ) -> _Family:
        names = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (
                    family.kind != kind
                    or family.labelnames != names
                    or family.buckets != buckets
                ):
                    raise TelemetryError(
                        f"metric {name!r} already registered as a "
                        f"{family.kind} with labels {list(family.labelnames)}"
                    )
                return family
            family = _Family(name, kind, help, names, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labelnames: Iterable[str] = (),
    ) -> _Family:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs at least one bucket")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} buckets must be strictly increasing: {bounds}"
            )
        return self._register(name, "histogram", help, labelnames, bounds)

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render(self) -> str:
        """The full registry in Prometheus text format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrument registers into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return REGISTRY
