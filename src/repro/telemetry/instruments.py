"""The solve pipeline's well-known instruments, bound once at import.

Every hot path shares these module-level handles instead of re-resolving
``REGISTRY.counter(...)`` per call: an update is one lock acquisition.
The registry is process-wide, so a served tier, an embedded advisor, and
a CLI run all land in the same families — and ``GET /metrics`` exposes
exactly this set (plus whatever else registered).

Process-backend workers update their *own* process's registry; worker
metrics do not ship back with results (spans and cost-call statistics
do).  The parent's metrics therefore count parent-side work only, which
is the scrape surface that matters for a served tier.
"""

from __future__ import annotations

from .metrics import LATENCY_BUCKETS, REGISTRY

__all__ = [
    "SOLVE_LATENCY",
    "PROBE_LATENCY",
    "REQUEST_LATENCY",
    "REQUESTS_TOTAL",
    "IN_FLIGHT",
    "HTTP_REQUESTS_TOTAL",
    "MEMO_LOOKUPS",
    "MEMO_HITS",
    "MEMO_MISSES",
    "MEMO_HIT_RATIO",
    "BNB_NODES",
    "BNB_PRUNED",
    "PLACEMENT_PROBES",
    "TRACES_EMITTED",
    "LOADGEN_REQUESTS_TOTAL",
    "LOADGEN_LATENCY",
]

#: Per-machine enumerator solves (an actual search; memo hits excluded).
SOLVE_LATENCY = REGISTRY.histogram(
    "repro_solve_latency_seconds",
    "Wall time of per-machine advisor solves (memo misses only).",
    buckets=LATENCY_BUCKETS,
)

#: Placement probes — candidate co-location pricings, memo hits included.
PROBE_LATENCY = REGISTRY.histogram(
    "repro_probe_latency_seconds",
    "Wall time of placement probes (candidate co-location pricings).",
    buckets=LATENCY_BUCKETS,
)

#: Service-level request latency, labeled by logical endpoint.
REQUEST_LATENCY = REGISTRY.histogram(
    "repro_request_latency_seconds",
    "Wall time of advisor service requests by endpoint.",
    buckets=LATENCY_BUCKETS,
    labelnames=("endpoint",),
)

REQUESTS_TOTAL = REGISTRY.counter(
    "repro_requests_total",
    "Advisor service requests served, by endpoint.",
    labelnames=("endpoint",),
)

IN_FLIGHT = REGISTRY.gauge(
    "repro_in_flight_requests",
    "Advisor service requests currently executing.",
)

#: HTTP-layer accounting (status included; 4xx/5xx visible).
HTTP_REQUESTS_TOTAL = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests handled, by endpoint and status code.",
    labelnames=("endpoint", "status"),
)

MEMO_LOOKUPS = REGISTRY.counter(
    "repro_solve_memo_lookups_total",
    "Fleet solve-memo lookups, by result.",
    labelnames=("result",),
)

#: Pre-bound children: the memo's get() is the hottest instrumented path.
MEMO_HITS = MEMO_LOOKUPS.labels(result="hit")
MEMO_MISSES = MEMO_LOOKUPS.labels(result="miss")

MEMO_HIT_RATIO = REGISTRY.gauge(
    "repro_solve_memo_hit_ratio",
    "Fraction of fleet solve-memo lookups served from the memo.",
)


def _memo_hit_ratio() -> float:
    hits = MEMO_HITS.value
    lookups = hits + MEMO_MISSES.value
    return hits / lookups if lookups else 0.0


MEMO_HIT_RATIO.set_function(_memo_hit_ratio)

BNB_NODES = REGISTRY.counter(
    "repro_bnb_nodes_total",
    "Branch-and-bound placement nodes explored.",
)

BNB_PRUNED = REGISTRY.counter(
    "repro_bnb_pruned_total",
    "Branch-and-bound placement nodes pruned by the bound.",
)

PLACEMENT_PROBES = REGISTRY.counter(
    "repro_placement_probes_total",
    "Candidate co-locations priced during placement.",
)

TRACES_EMITTED = REGISTRY.counter(
    "repro_traces_emitted_total",
    "Completed traces emitted to sinks.",
)

#: Black-box load-generator accounting (client side of repro.loadgen).
#: Statuses are HTTP codes plus "error" for transport failures, so the
#: label space stays bounded.
LOADGEN_REQUESTS_TOTAL = REGISTRY.counter(
    "repro_loadgen_requests_total",
    "Load-generator requests fired, by endpoint and status.",
    labelnames=("endpoint", "status"),
)

#: Client-side latency measured from the *scheduled* arrival time (open
#: workload: queueing delay anywhere — client pool or server — counts).
LOADGEN_LATENCY = REGISTRY.histogram(
    "repro_loadgen_request_latency_seconds",
    "Client-observed latency from scheduled arrival to response.",
    buckets=LATENCY_BUCKETS,
    labelnames=("endpoint", "status"),
)
