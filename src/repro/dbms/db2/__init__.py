"""DB2-style engine simulator.

Implements the optimizer configuration parameters of Table III of the paper
(``cpuspeed``, ``overhead``, ``transfer_rate``, ``sortheap``,
``bufferpool``), a cost model expressed in timerons (DB2's synthetic cost
unit), and the DB2 memory-sizing policy used in the paper's experiments.
"""

from .cost_model import DB2CostModel, TIMERON_MILLISECONDS
from .engine import DB2Engine
from .params import DB2Parameters, DEFAULT_DB2_PARAMETERS

__all__ = [
    "DB2CostModel",
    "DB2Engine",
    "DB2Parameters",
    "DEFAULT_DB2_PARAMETERS",
    "TIMERON_MILLISECONDS",
]
