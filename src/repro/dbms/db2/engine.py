"""DB2 engine simulator."""

from __future__ import annotations

from typing import Optional

from ...virt.vm import VMEnvironment
from ...units import seconds_to_ms
from ..catalog import Database
from ..interface import DatabaseEngine
from ..memory import DB2MemoryPolicy, MemoryPolicy
from .cost_model import DB2CostModel
from .params import DB2Parameters


class DB2Engine(DatabaseEngine):
    """A simulated DB2 instance bound to one database."""

    name = "db2"
    native_unit = "timerons"
    cpu_efficiency = 0.95

    def __init__(
        self,
        database: Database,
        memory_policy: Optional[MemoryPolicy] = None,
    ) -> None:
        super().__init__(
            database=database,
            memory_policy=memory_policy or DB2MemoryPolicy(),
        )

    def true_configuration(self, env: VMEnvironment) -> DB2Parameters:
        """Parameters a perfectly calibrated installation would use in ``env``."""
        memory = self.memory_configuration(env.dbms_memory_mb)
        seconds_per_unit = self.seconds_per_work_unit(env)
        return DB2Parameters(
            cpuspeed_ms=seconds_to_ms(seconds_per_unit),
            overhead_ms=seconds_to_ms(
                max(1e-9, env.random_page_seconds - env.seq_page_seconds)
            ),
            transfer_rate_ms=seconds_to_ms(env.seq_page_seconds),
            bufferpool_mb=memory.buffer_pool_mb,
            sortheap_mb=memory.work_mem_mb,
        )

    def make_cost_model(self, configuration: DB2Parameters) -> DB2CostModel:
        return DB2CostModel(configuration, page_size=self.database.page_size)
