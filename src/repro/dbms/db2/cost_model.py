"""DB2-style optimizer cost model.

DB2 expresses plan costs in *timerons*, "a synthetic unit of measure" that
gives a relative estimate of the resources needed to execute a plan.  The
simulator's timeron is a fixed (but, from the advisor's point of view,
unknown) number of milliseconds of resource usage: the renormalization
procedure of Section 4.2 recovers the seconds-per-timeron factor with a
linear regression over calibration queries, without ever being told
:data:`TIMERON_MILLISECONDS`.
"""

from __future__ import annotations

from ...units import DEFAULT_PAGE_SIZE
from ..execution import (
    CPU_WORK_PER_INDEX_TUPLE,
    CPU_WORK_PER_OPERATOR,
    CPU_WORK_PER_TUPLE,
)
from ..interface import EngineCostModel
from ..plans import ResourceUsage
from .params import DB2Parameters

#: Internal definition of one timeron, in milliseconds of resource usage.
TIMERON_MILLISECONDS = 0.4

#: Fraction of the true sort-spill I/O that the optimizer's cost model
#: accounts for.  DB2's optimizer underestimates the performance impact of
#: an undersized sort heap (and therefore the benefit of a larger one); this
#: is the modeling error the paper's Section 7.9 experiment corrects with
#: online refinement.
SORT_SPILL_MODELING_FACTOR = 0.15


class DB2CostModel(EngineCostModel):
    """Cost model parameterized by :class:`DB2Parameters`."""

    def __init__(
        self,
        parameters: DB2Parameters,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        super().__init__(page_size=page_size)
        self.parameters = parameters

    @property
    def cache_mb(self) -> float:
        return self.parameters.cache_mb

    def resource_milliseconds(self, usage: ResourceUsage) -> float:
        """Estimated resource consumption of a plan, in milliseconds."""
        params = self.parameters
        instructions = (
            usage.tuples * CPU_WORK_PER_TUPLE
            + usage.index_tuples * CPU_WORK_PER_INDEX_TUPLE
            + usage.operator_evals * CPU_WORK_PER_OPERATOR
        )
        cpu_ms = instructions * params.cpuspeed_ms
        io_ms = (
            usage.random_pages * (params.overhead_ms + params.transfer_rate_ms)
            + usage.seq_pages * params.transfer_rate_ms
            + usage.pages_written * params.transfer_rate_ms
            + usage.sort_spill_pages
            * 2.0
            * params.transfer_rate_ms
            * SORT_SPILL_MODELING_FACTOR
        )
        return cpu_ms + io_ms

    def plan_cost(self, usage: ResourceUsage) -> float:
        """Plan cost in timerons."""
        return self.resource_milliseconds(usage) / TIMERON_MILLISECONDS
