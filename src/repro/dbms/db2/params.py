"""DB2 optimizer configuration parameters (Table III of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ...exceptions import ConfigurationError
from ..interface import EngineConfiguration


@dataclass(frozen=True)
class DB2Parameters(EngineConfiguration):
    """The DB2 optimizer parameter vector.

    Descriptive parameters (characterise the environment):

    * ``cpuspeed_ms`` — CPU speed in milliseconds per abstract instruction.
    * ``overhead_ms`` — overhead of a single random I/O, in milliseconds.
    * ``transfer_rate_ms`` — time to read one data page, in milliseconds.

    Prescriptive parameters (configure the DBMS itself):

    * ``bufferpool_mb`` — buffer pool size.
    * ``sortheap_mb`` — memory available to sorting/hashing operators.
    """

    cpuspeed_ms: float = 5.0e-4
    overhead_ms: float = 6.0
    transfer_rate_ms: float = 0.1
    bufferpool_mb: float = 190.0
    sortheap_mb: float = 40.0

    def __post_init__(self) -> None:
        for name in ("cpuspeed_ms", "overhead_ms", "transfer_rate_ms", "sortheap_mb"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.bufferpool_mb < 0:
            raise ConfigurationError("bufferpool_mb must not be negative")

    @property
    def work_mem_mb(self) -> float:
        """Memory available to each sort/hash operator."""
        return self.sortheap_mb

    @property
    def cache_mb(self) -> float:
        """Cache size the optimizer assumes when costing page reads."""
        return self.bufferpool_mb

    def with_memory(self, bufferpool_mb: float, sortheap_mb: float) -> "DB2Parameters":
        """Return a copy with the prescriptive memory settings replaced."""
        return replace(self, bufferpool_mb=bufferpool_mb, sortheap_mb=sortheap_mb)

    def with_cpuspeed(self, cpuspeed_ms: float) -> "DB2Parameters":
        """Return a copy with the CPU speed replaced."""
        return replace(self, cpuspeed_ms=cpuspeed_ms)

    def with_io_costs(
        self, overhead_ms: float, transfer_rate_ms: float
    ) -> "DB2Parameters":
        """Return a copy with the I/O descriptive parameters replaced."""
        return replace(self, overhead_ms=overhead_ms, transfer_rate_ms=transfer_rate_ms)


#: Stock DB2 defaults; used as the uncalibrated baseline.
DEFAULT_DB2_PARAMETERS = DB2Parameters()
