"""PostgreSQL-style optimizer cost model.

Costs are expressed in units of one sequential page read (``seq_page_cost``
is the unit).  The model weights the plan's logical resource usage — whose
page-read counts already reflect the cache assumption the plan was built
with (``effective_cache_size``/``shared_buffers``) — with the configuration
parameters.  Result-row delivery is intentionally not costed, exactly as in
the real system (see the footnote to Section 4.3 of the paper).
"""

from __future__ import annotations

from ...units import DEFAULT_PAGE_SIZE
from ..interface import EngineCostModel
from ..plans import ResourceUsage
from .params import PostgreSQLParameters


class PostgreSQLCostModel(EngineCostModel):
    """Cost model parameterized by :class:`PostgreSQLParameters`."""

    def __init__(
        self,
        parameters: PostgreSQLParameters,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        super().__init__(page_size=page_size)
        self.parameters = parameters

    @property
    def cache_mb(self) -> float:
        return self.parameters.cache_mb

    def plan_cost(self, usage: ResourceUsage) -> float:
        params = self.parameters
        io_cost = (
            usage.seq_pages * params.seq_page_cost
            + usage.random_pages * params.random_page_cost
            + usage.pages_written * params.seq_page_cost
            # Sort spill runs are written once and read back once.
            + usage.sort_spill_pages * 2.0 * params.seq_page_cost
        )
        cpu_cost = (
            usage.tuples * params.cpu_tuple_cost
            + usage.index_tuples * params.cpu_index_tuple_cost
            + usage.operator_evals * params.cpu_operator_cost
        )
        return io_cost + cpu_cost
