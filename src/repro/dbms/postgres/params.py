"""PostgreSQL optimizer configuration parameters (Table II of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ...exceptions import ConfigurationError
from ..interface import EngineConfiguration


@dataclass(frozen=True)
class PostgreSQLParameters(EngineConfiguration):
    """The PostgreSQL optimizer parameter vector.

    Descriptive parameters (characterise the environment):

    * ``random_page_cost`` — cost of a non-sequential page read, in units of
      one sequential page read.
    * ``cpu_tuple_cost`` — CPU cost of processing one tuple.
    * ``cpu_operator_cost`` — per-tuple CPU cost of each predicate/operator.
    * ``cpu_index_tuple_cost`` — CPU cost of processing one index entry.
    * ``effective_cache_size_mb`` — file-system cache the planner assumes.

    Prescriptive parameters (configure the DBMS itself):

    * ``shared_buffers_mb`` — buffer pool size.
    * ``work_mem_mb`` — memory for each sorting/hashing operator.

    ``seq_page_cost`` is fixed at 1.0: PostgreSQL normalizes every cost to
    the cost of a single sequential page read, which is also why the
    renormalization factor for PostgreSQL is simply the measured seconds per
    sequential page read (Section 4.2).
    """

    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_operator_cost: float = 0.0025
    cpu_index_tuple_cost: float = 0.005
    shared_buffers_mb: float = 32.0
    work_mem_mb: float = 5.0
    effective_cache_size_mb: float = 128.0
    seq_page_cost: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "random_page_cost",
            "cpu_tuple_cost",
            "cpu_operator_cost",
            "cpu_index_tuple_cost",
            "work_mem_mb",
            "seq_page_cost",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        for name in ("shared_buffers_mb", "effective_cache_size_mb"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must not be negative")

    @property
    def cache_mb(self) -> float:
        """Cache size the planner assumes when costing page reads."""
        return max(self.shared_buffers_mb, self.effective_cache_size_mb)

    def with_memory(
        self, shared_buffers_mb: float, work_mem_mb: float,
        effective_cache_size_mb: float,
    ) -> "PostgreSQLParameters":
        """Return a copy with the prescriptive memory settings replaced."""
        return replace(
            self,
            shared_buffers_mb=shared_buffers_mb,
            work_mem_mb=work_mem_mb,
            effective_cache_size_mb=effective_cache_size_mb,
        )

    def with_cpu_costs(
        self,
        cpu_tuple_cost: float,
        cpu_operator_cost: float,
        cpu_index_tuple_cost: float,
    ) -> "PostgreSQLParameters":
        """Return a copy with the CPU-related descriptive parameters replaced."""
        return replace(
            self,
            cpu_tuple_cost=cpu_tuple_cost,
            cpu_operator_cost=cpu_operator_cost,
            cpu_index_tuple_cost=cpu_index_tuple_cost,
        )

    def with_io_costs(self, random_page_cost: float) -> "PostgreSQLParameters":
        """Return a copy with the I/O-related descriptive parameters replaced."""
        return replace(self, random_page_cost=random_page_cost)


#: Stock PostgreSQL 8.1 defaults; used as the uncalibrated baseline.
DEFAULT_POSTGRESQL_PARAMETERS = PostgreSQLParameters()
