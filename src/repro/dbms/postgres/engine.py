"""PostgreSQL engine simulator."""

from __future__ import annotations

from typing import Optional

from ...virt.vm import VMEnvironment
from ..catalog import Database
from ..execution import (
    CPU_WORK_PER_INDEX_TUPLE,
    CPU_WORK_PER_OPERATOR,
    CPU_WORK_PER_TUPLE,
)
from ..interface import DatabaseEngine
from ..memory import MemoryPolicy, PostgresMemoryPolicy
from .cost_model import PostgreSQLCostModel
from .params import PostgreSQLParameters


class PostgreSQLEngine(DatabaseEngine):
    """A simulated PostgreSQL instance bound to one database.

    The engine's runtime is slightly less CPU-efficient than the nominal
    machine rate (``cpu_efficiency`` > 1), which is one of the reasons the
    two engines need separately calibrated cost models — a point the paper's
    motivating example (Figure 2) relies on.
    """

    name = "postgresql"
    native_unit = "seq-page-read units"
    cpu_efficiency = 1.15

    def __init__(
        self,
        database: Database,
        memory_policy: Optional[MemoryPolicy] = None,
    ) -> None:
        super().__init__(
            database=database,
            memory_policy=memory_policy or PostgresMemoryPolicy(),
        )

    def true_configuration(self, env: VMEnvironment) -> PostgreSQLParameters:
        """Parameters a perfectly calibrated installation would use in ``env``."""
        memory = self.memory_configuration(env.dbms_memory_mb)
        seconds_per_unit = self.seconds_per_work_unit(env)
        seq_page_seconds = env.seq_page_seconds
        return PostgreSQLParameters(
            random_page_cost=env.random_page_seconds / seq_page_seconds,
            cpu_tuple_cost=CPU_WORK_PER_TUPLE * seconds_per_unit / seq_page_seconds,
            cpu_operator_cost=(
                CPU_WORK_PER_OPERATOR * seconds_per_unit / seq_page_seconds
            ),
            cpu_index_tuple_cost=(
                CPU_WORK_PER_INDEX_TUPLE * seconds_per_unit / seq_page_seconds
            ),
            shared_buffers_mb=memory.buffer_pool_mb,
            work_mem_mb=memory.work_mem_mb,
            effective_cache_size_mb=memory.total_cache_mb,
        )

    def make_cost_model(self, configuration: PostgreSQLParameters) -> PostgreSQLCostModel:
        return PostgreSQLCostModel(configuration, page_size=self.database.page_size)
