"""PostgreSQL-style engine simulator.

Implements the optimizer configuration parameters of Table II of the paper
(``random_page_cost``, ``cpu_tuple_cost``, ``cpu_operator_cost``,
``cpu_index_tuple_cost``, ``shared_buffers``, ``work_mem``,
``effective_cache_size``), a cost model expressed in units of one sequential
page read, and the PostgreSQL memory-sizing policy used in the paper's
experiments.
"""

from .cost_model import PostgreSQLCostModel
from .engine import PostgreSQLEngine
from .params import DEFAULT_POSTGRESQL_PARAMETERS, PostgreSQLParameters

__all__ = [
    "DEFAULT_POSTGRESQL_PARAMETERS",
    "PostgreSQLCostModel",
    "PostgreSQLEngine",
    "PostgreSQLParameters",
]
