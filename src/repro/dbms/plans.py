"""Physical plan operators and their resource usage.

A physical plan is a tree of operator nodes.  Each node records, at build
time, the *logical* resource usage it incurs: tuples processed, predicate
evaluations, index entries visited, sequential and random page requests,
pages written, and the size of the working set it touches.  These counts are
independent of who is looking at the plan:

* the engine-specific optimizer cost models weight the counts with their
  configuration parameters (Tables II and III of the paper) to produce a
  cost estimate in the engine's native unit, and
* the ground-truth execution model weights the same counts with the real
  per-operation times of the VM environment (plus the effects optimizers do
  not model) to produce an actual run time.

Keeping the counts logical — i.e. before buffer caching — lets the
estimation and execution paths apply their own cache models, which is one of
the sources of optimizer error the paper's online refinement corrects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..units import MB
from .cache import miss_fraction
from .catalog import Database, Index, Table
from .query import AggregateSpec, QuerySpec, TableAccess, UpdateProfile


@dataclass(frozen=True)
class ResourceUsage:
    """Logical resource usage of (part of) a query plan.

    All fields are counts of logical operations; none of them carry a unit
    of time or cost.  ``working_set_pages`` approximates the number of
    distinct pages touched, which the cache models use to decide how many of
    the requested page reads actually reach the disk.

    Frozen so aggregated usage records can be memoized and shared across
    cost evaluations (plans are cached per engine configuration) without
    any risk of in-place corruption.
    """

    tuples: float = 0.0
    index_tuples: float = 0.0
    operator_evals: float = 0.0
    seq_pages: float = 0.0
    random_pages: float = 0.0
    pages_written: float = 0.0
    sort_spill_pages: float = 0.0
    rows_returned: float = 0.0
    working_set_pages: float = 0.0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        """Return a copy with every count multiplied by ``factor``.

        The working set is *not* scaled: repeating an access pattern touches
        the same pages again, not new ones.
        """
        if factor < 0:
            raise ConfigurationError("scale factor must not be negative")
        values = {f.name: getattr(self, f.name) * factor for f in fields(self)}
        values["working_set_pages"] = self.working_set_pages
        return ResourceUsage(**values)

    def copy(self) -> "ResourceUsage":
        """Return an independent copy of this usage record."""
        return ResourceUsage(**{f.name: getattr(self, f.name) for f in fields(self)})

    @property
    def page_reads(self) -> float:
        """Total logical page read requests (sequential + random)."""
        return self.seq_pages + self.random_pages

    @property
    def cpu_operations(self) -> float:
        """Total logical CPU operations of all kinds."""
        return self.tuples + self.index_tuples + self.operator_evals

    def as_dict(self) -> dict:
        """Return the usage as a plain dictionary (useful for reporting)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class PlanBuildContext:
    """Everything a plan node needs to compute its resource usage.

    Attributes:
        database: catalog the query runs against.
        work_mem_mb: memory available to each sort/hash operator (the
            PostgreSQL ``work_mem`` or the per-operator share of the DB2
            ``sortheap``).
        cache_mb: memory available for caching data pages (buffer pool plus
            any file-system cache the engine accounts for).  Scan nodes
            record only the page reads expected to *miss* this warm cache,
            so a plan's usage already reflects the memory configuration it
            was built for.
        cpu_work_per_tuple: ground-truth CPU work multiplier of the query;
            scan and join nodes multiply their tuple counts by it so that
            CPU-intensive queries are CPU intensive for both the optimizer
            and the executor.
    """

    database: Database
    work_mem_mb: float = 5.0
    cache_mb: float = 128.0
    cpu_work_per_tuple: float = 1.0

    def __post_init__(self) -> None:
        if self.work_mem_mb <= 0:
            raise ConfigurationError("work_mem_mb must be positive")
        if self.cache_mb < 0:
            raise ConfigurationError("cache_mb must not be negative")
        if self.cpu_work_per_tuple <= 0:
            raise ConfigurationError("cpu_work_per_tuple must be positive")

    @property
    def work_mem_bytes(self) -> float:
        """Per-operator sort/hash memory in bytes."""
        return self.work_mem_mb * MB

    @property
    def cache_pages(self) -> float:
        """Cache size expressed in pages of the target database."""
        return self.cache_mb * MB / self.database.page_size


class PlanNode:
    """Base class for physical plan operators."""

    label = "plan"

    def __init__(
        self,
        rows: float,
        width_bytes: float,
        usage: ResourceUsage,
        children: Sequence["PlanNode"] = (),
    ) -> None:
        if rows < 0:
            raise ConfigurationError("plan node rows must not be negative")
        if width_bytes <= 0:
            raise ConfigurationError("plan node width must be positive")
        self.rows = float(rows)
        self.width_bytes = float(width_bytes)
        self.usage = usage
        self.children: Tuple[PlanNode, ...] = tuple(children)
        self._total_usage: Optional[ResourceUsage] = None

    @property
    def output_bytes(self) -> float:
        """Size of this node's output in bytes."""
        return self.rows * self.width_bytes

    def total_usage(self) -> ResourceUsage:
        """Aggregate resource usage of this node and its entire subtree.

        A subtree is immutable once constructed, so the aggregate is
        memoized: evaluating one plan under many environments (the batch
        cost path walks whole grids of allocations) aggregates each subtree
        once instead of re-walking the tree per evaluation.  Sharing the
        memoized record is safe because :class:`ResourceUsage` is frozen.
        """
        total = self._total_usage
        if total is None:
            total = self.usage
            for child in self.children:
                total = total + child.total_usage()
            self._total_usage = total
        return total

    def walk(self) -> List["PlanNode"]:
        """Return this node and all descendants in pre-order."""
        nodes: List[PlanNode] = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes

    def describe(self, indent: int = 0) -> str:
        """Return a human-readable, EXPLAIN-like rendering of the subtree."""
        line = (
            f"{'  ' * indent}{self.label} "
            f"(rows={self.rows:.0f}, width={self.width_bytes:.0f})"
        )
        parts = [line]
        parts.extend(child.describe(indent + 1) for child in self.children)
        return "\n".join(parts)

    def signature(self) -> str:
        """Structural signature used to detect plan changes across configs."""
        child_sigs = ",".join(child.signature() for child in self.children)
        return f"{self.label}({child_sigs})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rows={self.rows:.0f})"


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------
class SeqScanNode(PlanNode):
    """Full sequential scan of a base table with local predicates.

    The recorded page reads are the reads expected to miss the warm cache
    of the build context; a table that fits entirely in the cache performs
    no physical I/O, as in the paper's warm-cache measurement methodology.
    """

    label = "SeqScan"

    def __init__(self, access: TableAccess, context: PlanBuildContext) -> None:
        table = context.database.table(access.table)
        out_rows = table.row_count * access.selectivity
        misses = miss_fraction(table.pages, context.cache_pages)
        usage = ResourceUsage(
            tuples=table.row_count * context.cpu_work_per_tuple,
            operator_evals=table.row_count * access.predicates_per_row,
            seq_pages=table.pages * misses,
            working_set_pages=table.pages,
        )
        super().__init__(rows=out_rows, width_bytes=access.output_width_bytes,
                         usage=usage)
        self.access = access
        self.table = table


class IndexScanNode(PlanNode):
    """Index scan of a base table: B-tree descent plus heap fetches."""

    label = "IndexScan"

    def __init__(self, access: TableAccess, context: PlanBuildContext) -> None:
        if access.index is None:
            raise ConfigurationError(
                f"access to {access.table!r} has no usable index"
            )
        table = context.database.table(access.table)
        index = context.database.index(access.index)
        fetched = table.row_count * access.effective_index_selectivity
        out_rows = table.row_count * access.selectivity

        index_leaf_pages = index.leaf_pages(table) * access.effective_index_selectivity
        index_descent_pages = index.height(table)
        if index.clustered:
            # Clustered fetches touch consecutive heap pages.
            heap_seq = min(table.pages, fetched / table.rows_per_page + 1.0)
            heap_random = 0.0
        else:
            heap_seq = 0.0
            heap_random = min(table.pages, fetched)

        working_set = (
            index_leaf_pages
            + index_descent_pages
            + min(table.pages, heap_seq + heap_random)
        )
        misses = miss_fraction(working_set, context.cache_pages)
        usage = ResourceUsage(
            tuples=fetched * context.cpu_work_per_tuple,
            index_tuples=fetched,
            operator_evals=fetched * access.predicates_per_row,
            seq_pages=(index_leaf_pages + heap_seq) * misses,
            random_pages=(index_descent_pages + heap_random) * misses,
            working_set_pages=working_set,
        )
        super().__init__(rows=out_rows, width_bytes=access.output_width_bytes,
                         usage=usage)
        self.access = access
        self.table = table
        self.index = index


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
class NestedLoopJoinNode(PlanNode):
    """Nested-loop join: the inner access is re-executed per outer row."""

    label = "NestLoop"

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        selectivity: float,
        join_predicates: float,
        context: PlanBuildContext,
    ) -> None:
        out_rows = outer.rows * inner.rows * selectivity
        rescans = max(0.0, outer.rows - 1.0)
        # Re-executions of the inner subtree repeat its logical operations.
        rescan_usage = inner.total_usage().scaled(rescans)
        usage = rescan_usage + ResourceUsage(
            operator_evals=outer.rows * inner.rows * join_predicates,
            tuples=out_rows * context.cpu_work_per_tuple,
        )
        width = outer.width_bytes + inner.width_bytes
        super().__init__(rows=out_rows, width_bytes=width, usage=usage,
                         children=(outer, inner))
        self.selectivity = selectivity


class HashJoinNode(PlanNode):
    """Hash join: builds a hash table on the inner input, probes with the outer.

    When the inner input does not fit into the operator's work memory, the
    spilled fraction of both inputs is written to temporary storage and read
    back, as in a Grace/hybrid hash join.  The spill volume shrinks linearly
    as work memory grows, and disappears once the inner side fits, which is
    one of the sources of the piecewise behaviour of cost versus memory.
    """

    label = "HashJoin"

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        selectivity: float,
        join_predicates: float,
        context: PlanBuildContext,
    ) -> None:
        out_rows = outer.rows * inner.rows * selectivity
        build_bytes = inner.output_bytes
        spill_fraction = 0.0
        if build_bytes > context.work_mem_bytes:
            spill_fraction = 1.0 - context.work_mem_bytes / build_bytes
        spilled_bytes = (inner.output_bytes + outer.output_bytes) * spill_fraction
        spilled_pages = spilled_bytes / context.database.page_size

        usage = ResourceUsage(
            # Build + probe hashing work.
            operator_evals=(inner.rows + outer.rows) * (1.0 + join_predicates),
            tuples=out_rows * context.cpu_work_per_tuple,
            pages_written=spilled_pages,
            seq_pages=spilled_pages,
        )
        width = outer.width_bytes + inner.width_bytes
        super().__init__(rows=out_rows, width_bytes=width, usage=usage,
                         children=(outer, inner))
        self.selectivity = selectivity
        self.spill_fraction = spill_fraction

    @property
    def in_memory(self) -> bool:
        """Whether the build side fits entirely in work memory."""
        return self.spill_fraction == 0.0


class SortMergeJoinNode(PlanNode):
    """Sort-merge join: both inputs sorted (if needed) then merged."""

    label = "MergeJoin"

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        selectivity: float,
        join_predicates: float,
        context: PlanBuildContext,
    ) -> None:
        sorted_outer = SortNode(outer, context)
        sorted_inner = SortNode(inner, context)
        out_rows = outer.rows * inner.rows * selectivity
        usage = ResourceUsage(
            operator_evals=(outer.rows + inner.rows) * join_predicates,
            tuples=out_rows * context.cpu_work_per_tuple,
        )
        width = outer.width_bytes + inner.width_bytes
        super().__init__(rows=out_rows, width_bytes=width, usage=usage,
                         children=(sorted_outer, sorted_inner))
        self.selectivity = selectivity


# ----------------------------------------------------------------------
# Sorting, aggregation, result delivery, updates
# ----------------------------------------------------------------------
class SortNode(PlanNode):
    """Sort of an intermediate result; spills to disk when memory is short.

    Spill I/O is recorded in the dedicated ``sort_spill_pages`` counter
    rather than in the ordinary page counters: temporary sort runs bypass
    the buffer cache, and keeping them separate lets the DB2 cost model
    under-weight them (the sort-heap modelling error Section 7.9 exploits).
    """

    label = "Sort"

    def __init__(self, child: PlanNode, context: PlanBuildContext) -> None:
        input_bytes = child.output_bytes
        comparisons = child.rows * max(1.0, math.log2(max(2.0, child.rows)))
        spill_fraction = 0.0
        if input_bytes > context.work_mem_bytes:
            spill_fraction = 1.0 - context.work_mem_bytes / input_bytes
        spilled_pages = input_bytes * spill_fraction / context.database.page_size
        usage = ResourceUsage(
            operator_evals=comparisons,
            sort_spill_pages=spilled_pages,
        )
        super().__init__(rows=child.rows, width_bytes=child.width_bytes,
                         usage=usage, children=(child,))
        self.spill_fraction = spill_fraction

    @property
    def in_memory(self) -> bool:
        """Whether the sort completes without spilling."""
        return self.spill_fraction == 0.0


class HashAggregateNode(PlanNode):
    """Hash-based aggregation; requires the group table to fit in memory."""

    label = "HashAggregate"

    def __init__(
        self,
        child: PlanNode,
        spec: AggregateSpec,
        context: PlanBuildContext,
    ) -> None:
        groups = max(1.0, child.rows * spec.group_fraction)
        usage = ResourceUsage(
            operator_evals=child.rows * (1.0 + spec.aggregates),
            tuples=groups,
        )
        super().__init__(rows=groups, width_bytes=child.width_bytes,
                         usage=usage, children=(child,))
        self.groups = groups

    @staticmethod
    def fits_in_memory(child: PlanNode, spec: AggregateSpec,
                       context: PlanBuildContext) -> bool:
        """Whether the hash table of groups fits in the operator's memory."""
        groups = max(1.0, child.rows * spec.group_fraction)
        return groups * child.width_bytes <= context.work_mem_bytes


class SortAggregateNode(PlanNode):
    """Sort-based aggregation: sorts the input and aggregates adjacent groups."""

    label = "GroupAggregate"

    def __init__(
        self,
        child: PlanNode,
        spec: AggregateSpec,
        context: PlanBuildContext,
    ) -> None:
        sorted_child = SortNode(child, context)
        groups = max(1.0, child.rows * spec.group_fraction)
        usage = ResourceUsage(
            operator_evals=child.rows * (1.0 + spec.aggregates),
            tuples=groups,
        )
        super().__init__(rows=groups, width_bytes=child.width_bytes,
                         usage=usage, children=(sorted_child,))
        self.groups = groups


class ResultNode(PlanNode):
    """Top-of-plan node that delivers rows to the client.

    The delivery cost (``rows_returned``) is deliberately *not* charged by
    the optimizer cost models — real optimizers ignore it because it is the
    same for every plan of a query — but the ground truth execution model
    charges it, mirroring the "non-modeled costs" discussed in Section 4.3.
    """

    label = "Result"

    def __init__(self, child: PlanNode, result_rows: Optional[float] = None) -> None:
        rows = child.rows if result_rows is None else float(result_rows)
        usage = ResourceUsage(rows_returned=rows)
        super().__init__(rows=rows, width_bytes=child.width_bytes,
                         usage=usage, children=(child,))


class UpdateNode(PlanNode):
    """Applies an OLTP statement's writes on top of its read plan.

    Dirtied pages are charged as page writes only: the pages being modified
    were just read by the statement's own read plan (so they are resident),
    and flushing them back is what the write cost accounts for.
    """

    label = "Update"

    def __init__(
        self,
        child: PlanNode,
        profile: UpdateProfile,
        context: PlanBuildContext,
    ) -> None:
        usage = ResourceUsage(
            tuples=profile.rows_written,
            pages_written=profile.pages_dirtied,
            working_set_pages=profile.pages_dirtied,
        )
        super().__init__(rows=child.rows, width_bytes=child.width_bytes,
                         usage=usage, children=(child,))
        self.profile = profile


@dataclass(frozen=True)
class QueryPlan:
    """A complete physical plan for one query.

    Attributes:
        query: the logical query the plan implements.
        root: root node of the operator tree (a :class:`ResultNode` or
            :class:`UpdateNode`).
        context: the build context (memory configuration) used.
    """

    query: QuerySpec
    root: PlanNode
    context: PlanBuildContext

    @property
    def usage(self) -> ResourceUsage:
        """Total logical resource usage of the plan."""
        return self.root.total_usage()

    @property
    def signature(self) -> str:
        """Structural signature; changes exactly when the plan shape changes."""
        return self.root.signature()

    def describe(self) -> str:
        """EXPLAIN-like rendering of the plan."""
        return self.root.describe()
