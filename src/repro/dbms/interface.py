"""Abstract interface shared by the simulated database engines.

Each engine (PostgreSQL-like, DB2-like) provides:

* an :class:`EngineConfiguration` — the optimizer parameter vector ``P_i``
  of the paper, combining descriptive parameters (CPU and I/O costs as seen
  by the optimizer) and prescriptive parameters (buffer pool and sort/work
  memory) — plus the ability to derive the *true* configuration for a VM
  environment (what a perfectly calibrated installation would use);
* an :class:`EngineCostModel` that converts a plan's logical resource usage
  into a cost expressed in the engine's native unit (PostgreSQL's
  sequential-page-read units, DB2's timerons);
* ``optimize``/``estimate_query`` methods implementing the "what-if" mode:
  given a configuration, choose a plan and report its estimated cost.

The advisor never executes queries through this interface — actual run
times come from :mod:`repro.dbms.execution` — which mirrors the paper's
separation between cost estimation (optimizer calls only) and measurement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..exceptions import EstimationError
from ..units import MB
from ..virt.vm import VMEnvironment
from .catalog import Database
from .memory import MemoryConfiguration, MemoryPolicy
from .plans import PlanBuildContext, QueryPlan, ResourceUsage
from .planner import Planner
from .query import QuerySpec


class EngineConfiguration:
    """Optimizer parameter vector ``P_i`` of one engine.

    Concrete configurations are frozen dataclasses providing at least:

    * ``work_mem_mb`` — memory available to each sort/hash operator, and
    * ``cache_mb`` — memory the optimizer believes is available for caching
      data pages.

    Being frozen dataclasses makes them hashable, so they can be used as
    cache keys for plan/cost caching (the optimization Section 4.5 of the
    paper suggests for the greedy search).
    """

    work_mem_mb: float
    cache_mb: float


class EngineCostModel(ABC):
    """Converts plan resource usage into engine-native cost units."""

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size

    @property
    def cache_pages(self) -> float:
        """Pages the optimizer believes can be cached."""
        return self.cache_mb * MB / self.page_size

    @property
    @abstractmethod
    def cache_mb(self) -> float:
        """Cache size, in MB, assumed by this cost model."""

    @abstractmethod
    def plan_cost(self, usage: ResourceUsage) -> float:
        """Native-unit cost of a plan with the given resource usage."""


class DatabaseEngine(ABC):
    """A simulated DBMS instance bound to one database catalog."""

    #: Engine name used in reports (e.g. ``"postgresql"`` or ``"db2"``).
    name: str = "engine"
    #: Human-readable name of the engine's native cost unit.
    native_unit: str = "cost"
    #: Relative CPU efficiency of this engine's runtime (1.0 = the physical
    #: machine's nominal work-unit rate).  Calibration recovers this
    #: implicitly because it measures real probe/query times.
    cpu_efficiency: float = 1.0

    def __init__(self, database: Database, memory_policy: MemoryPolicy) -> None:
        self.database = database
        self.memory_policy = memory_policy
        self.planner = Planner(database)
        self._plan_cache: Dict[Tuple[str, EngineConfiguration], Tuple[QueryPlan, float]] = {}
        self._plan_cache_hits = 0

    # ------------------------------------------------------------------
    # Abstract engine-specific pieces
    # ------------------------------------------------------------------
    @abstractmethod
    def true_configuration(self, env: VMEnvironment) -> EngineConfiguration:
        """Configuration a perfectly calibrated installation would use.

        The descriptive parameters are derived directly from the ground
        truth environment; the prescriptive parameters follow the engine's
        memory policy.  This is the configuration the engine uses to choose
        plans when workloads actually execute.
        """

    @abstractmethod
    def make_cost_model(self, configuration: EngineConfiguration) -> EngineCostModel:
        """Return the cost model parameterized by ``configuration``."""

    # ------------------------------------------------------------------
    # Shared behaviour
    # ------------------------------------------------------------------
    def seconds_per_work_unit(self, env: VMEnvironment) -> float:
        """Ground-truth seconds per CPU work unit for this engine in ``env``."""
        return env.seconds_per_work_unit * self.cpu_efficiency

    def memory_configuration(self, dbms_memory_mb: float) -> MemoryConfiguration:
        """Apply this engine's memory policy to the given DBMS memory."""
        return self.memory_policy.configure(dbms_memory_mb)

    def build_context(
        self, query: QuerySpec, configuration: EngineConfiguration
    ) -> PlanBuildContext:
        """Plan-build context implied by a configuration for one query."""
        return PlanBuildContext(
            database=self.database,
            work_mem_mb=configuration.work_mem_mb,
            cache_mb=configuration.cache_mb,
            cpu_work_per_tuple=query.cpu_work_per_tuple,
        )

    def optimize(
        self, query: QuerySpec, configuration: EngineConfiguration
    ) -> QueryPlan:
        """Choose the cheapest plan for ``query`` under ``configuration``."""
        plan, _ = self.estimate_query(query, configuration)
        return plan

    def estimate_query(
        self, query: QuerySpec, configuration: EngineConfiguration
    ) -> Tuple[QueryPlan, float]:
        """What-if call: plan and native-unit cost under ``configuration``."""
        if query.database != self.database.name:
            raise EstimationError(
                f"query {query.name!r} targets database {query.database!r}, but this "
                f"{self.name} instance hosts {self.database.name!r}"
            )
        key = (query.name, configuration)
        cached = self._plan_cache.get(key)
        if cached is not None:
            self._plan_cache_hits += 1
            return cached
        cost_model = self.make_cost_model(configuration)
        context = self.build_context(query, configuration)
        plan = self.planner.build_plan(query, context, cost_model)
        cost = cost_model.plan_cost(plan.usage)
        self._plan_cache[key] = (plan, cost)
        return plan, cost

    def estimate_statements(
        self,
        statements: Iterable[Tuple[QuerySpec, float]],
        configuration: EngineConfiguration,
    ) -> float:
        """Total native-unit cost of weighted statements under a configuration."""
        total = 0.0
        for query, frequency in statements:
            if frequency < 0:
                raise EstimationError(
                    f"statement frequency must not be negative (query {query.name!r})"
                )
            _, cost = self.estimate_query(query, configuration)
            total += cost * frequency
        return total

    def optimizer_call_count(self) -> int:
        """Number of distinct (query, configuration) optimizer calls so far."""
        return len(self._plan_cache)

    def plan_cache_hit_count(self) -> int:
        """What-if calls answered from the plan cache (monotonic counter)."""
        return self._plan_cache_hits

    def clear_plan_cache(self) -> None:
        """Drop all cached plans and costs."""
        self._plan_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(database={self.database.name!r})"
