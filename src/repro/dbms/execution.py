"""Ground-truth execution model.

This module plays the role of "actually running" a workload inside a virtual
machine.  It charges the plan's logical resource usage against the VM's real
per-operation times and adds the effects that query optimizers do not model:

* the cost of returning result rows to the client,
* locking, logging, and page-dirtying overheads of OLTP statements
  (the reason the optimizer underestimates TPC-C CPU needs in Section 7.8),
* extra benefit from plentiful sort/work memory that the optimizer does not
  anticipate (the DB2 ``sortheap`` underestimation exploited in Section 7.9),
* the actual buffer-cache behaviour given the memory the VM really has
  (the optimizer only sees its own configured cache parameters).

Because the model is deterministic, repeated "runs" of the same workload
under the same configuration produce identical times, which keeps the
reproduction's benchmarks and tests stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..exceptions import ExecutionError
from ..units import MB
from ..virt.vm import VMEnvironment
from .interface import DatabaseEngine
from .plans import QueryPlan, ResourceUsage
from .query import QuerySpec

#: Ground-truth CPU work units charged per logical operation.  The engines'
#: *true* descriptive parameters (and, therefore, well-calibrated optimizer
#: parameters) are consistent with these weights.
CPU_WORK_PER_TUPLE = 1.0
CPU_WORK_PER_INDEX_TUPLE = 0.5
CPU_WORK_PER_OPERATOR = 0.25
CPU_WORK_PER_RETURNED_ROW = 2.0

#: Log write bandwidth available to OLTP statements (bytes per second).
LOG_WRITE_BYTES_PER_SECOND = 20.0 * MB


def cpu_work_units(usage: ResourceUsage) -> float:
    """Ground-truth CPU work units implied by a plan's resource usage."""
    return (
        usage.tuples * CPU_WORK_PER_TUPLE
        + usage.index_tuples * CPU_WORK_PER_INDEX_TUPLE
        + usage.operator_evals * CPU_WORK_PER_OPERATOR
        + usage.rows_returned * CPU_WORK_PER_RETURNED_ROW
    )


@dataclass(frozen=True)
class ExecutionBreakdown:
    """Detailed timing of one simulated query execution.

    Attributes:
        cpu_seconds: time spent executing CPU work.
        io_seconds: time spent reading and writing pages.
        log_seconds: time spent writing the transaction log.
        contention_seconds: time spent on locking/latching overheads.
        total_seconds: end-to-end elapsed time (after any hidden memory
            speedup has been applied).
    """

    cpu_seconds: float
    io_seconds: float
    log_seconds: float
    contention_seconds: float
    total_seconds: float


class ExecutionModel:
    """Simulates the actual execution of plans inside a VM."""

    def __init__(self, engine: DatabaseEngine) -> None:
        self.engine = engine

    # ------------------------------------------------------------------
    # Plan-level execution
    # ------------------------------------------------------------------
    def execute_plan(
        self,
        plan: QueryPlan,
        env: VMEnvironment,
    ) -> ExecutionBreakdown:
        """Simulate running ``plan`` inside the environment ``env``."""
        query = plan.query
        usage = plan.usage
        memory = self.engine.memory_configuration(env.dbms_memory_mb)

        # CPU ------------------------------------------------------------
        work_units = cpu_work_units(usage)
        contention_units = 0.0
        if query.update is not None:
            contention_units = query.update.lock_wait_work_units
        seconds_per_unit = self.engine.seconds_per_work_unit(env)
        cpu_seconds = work_units * seconds_per_unit
        contention_seconds = contention_units * seconds_per_unit

        # I/O ------------------------------------------------------------
        # The plan's page counts already account for the warm cache the
        # engine was configured with when the plan was built (the executor
        # runs plans built under the engine's *true* configuration).
        io_seconds = (
            usage.seq_pages * env.seq_page_seconds
            + usage.random_pages * env.random_page_seconds
            + usage.pages_written * env.write_page_seconds
            # Sort spill runs bypass the buffer cache: written then read back.
            + usage.sort_spill_pages * (env.write_page_seconds + env.seq_page_seconds)
        )

        # Logging ----------------------------------------------------------
        log_seconds = 0.0
        if query.update is not None and query.update.log_bytes > 0:
            log_seconds = query.update.log_bytes / LOG_WRITE_BYTES_PER_SECOND

        total = cpu_seconds + io_seconds + log_seconds + contention_seconds
        total *= self._memory_shortage_factor(query, memory.work_mem_mb)
        return ExecutionBreakdown(
            cpu_seconds=cpu_seconds,
            io_seconds=io_seconds,
            log_seconds=log_seconds,
            contention_seconds=contention_seconds,
            total_seconds=total,
        )

    @staticmethod
    def _memory_shortage_factor(query: QuerySpec, work_mem_mb: float) -> float:
        """Slowdown from memory shortages the optimizer does not model.

        Queries flagged with a ``hidden_memory_penalty`` run slower than the
        optimizer predicts when their sort/work memory is below the
        requirement; the penalty fades linearly as memory approaches the
        requirement and vanishes above it.  This reproduces the DB2
        sort-heap underestimation of Section 7.9.
        """
        if query.hidden_memory_penalty <= 0.0:
            return 1.0
        if query.hidden_memory_requirement_mb <= 0.0:
            shortage = 0.0
        else:
            shortage = max(
                0.0, 1.0 - work_mem_mb / query.hidden_memory_requirement_mb
            )
        return 1.0 + query.hidden_memory_penalty * shortage

    # ------------------------------------------------------------------
    # Query- and workload-level execution
    # ------------------------------------------------------------------
    def execute_query(self, query: QuerySpec, env: VMEnvironment) -> float:
        """Simulate one execution of ``query`` and return elapsed seconds.

        The plan is chosen by the engine's optimizer under its *true*
        configuration for the environment — i.e. the plan a well-configured
        real installation would pick — and then timed with the ground-truth
        model.
        """
        configuration = self.engine.true_configuration(env)
        plan = self.engine.optimize(query, configuration)
        return self.execute_plan(plan, env).total_seconds

    def execute_statements(
        self,
        statements: Iterable[Tuple[QuerySpec, float]],
        env: VMEnvironment,
    ) -> float:
        """Total elapsed seconds of weighted statements run back to back."""
        total = 0.0
        for query, frequency in statements:
            if frequency < 0:
                raise ExecutionError(
                    f"statement frequency must not be negative (query {query.name!r})"
                )
            if frequency == 0:
                continue
            total += self.execute_query(query, env) * frequency
        return total

    def execute_statements_many(
        self,
        statements: Iterable[Tuple[QuerySpec, float]],
        envs: Sequence[VMEnvironment],
    ) -> List[float]:
        """Total elapsed seconds of one workload in each of many environments.

        Batch counterpart of :meth:`execute_statements`: the statement list
        is validated and materialized once and the engine's true
        configuration is derived once per environment instead of once per
        statement; plan choice still goes through the engine's per-
        configuration plan cache.
        """
        statements = [
            (query, frequency)
            for query, frequency in statements
            if frequency != 0
        ]
        for query, frequency in statements:
            if frequency < 0:
                raise ExecutionError(
                    f"statement frequency must not be negative (query {query.name!r})"
                )
        totals: List[float] = []
        for env in envs:
            configuration = self.engine.true_configuration(env)
            total = 0.0
            for query, frequency in statements:
                plan = self.engine.optimize(query, configuration)
                total += self.execute_plan(plan, env).total_seconds * frequency
            totals.append(total)
        return totals
