"""Catalog and statistics for the simulated database engines.

The optimizer cost models only need coarse statistics: row counts, row
widths, page counts, and index shapes.  The catalog mirrors what a real
system keeps in its statistics views and is sufficient to reproduce the
plan-choice behaviour the paper relies on (sequential versus index access,
hash-join build sizes, sort input sizes, buffer-pool working sets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError
from ..units import DEFAULT_PAGE_SIZE, MB

#: Fraction of each page usable for tuples (accounts for page headers and
#: fill factor); identical for both engines to keep comparisons fair.
_PAGE_FILL_FACTOR = 0.85

#: Bytes per index entry in addition to the key itself (tuple pointer etc.).
_INDEX_ENTRY_OVERHEAD = 12


@dataclass(frozen=True)
class Column:
    """A column of a table.

    Attributes:
        name: column name.
        width_bytes: average stored width of the column.
        distinct_values: number of distinct values (used for group-by and
            join cardinality sanity checks).
    """

    name: str
    width_bytes: int = 8
    distinct_values: int = 1000

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("column name must be non-empty")
        if self.width_bytes <= 0:
            raise ConfigurationError("column width_bytes must be positive")
        if self.distinct_values <= 0:
            raise ConfigurationError("column distinct_values must be positive")


@dataclass(frozen=True)
class Table:
    """A base table with its statistics.

    Attributes:
        name: table name.
        row_count: number of rows.
        row_width_bytes: average row width.
        columns: optional column-level statistics.
        page_size: page size in bytes.
    """

    name: str
    row_count: float
    row_width_bytes: int
    columns: Tuple[Column, ...] = ()
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("table name must be non-empty")
        if self.row_count < 0:
            raise ConfigurationError("table row_count must not be negative")
        if self.row_width_bytes <= 0:
            raise ConfigurationError("table row_width_bytes must be positive")
        if self.page_size <= 0:
            raise ConfigurationError("table page_size must be positive")

    @property
    def rows_per_page(self) -> float:
        """Average number of rows stored on one page."""
        usable = self.page_size * _PAGE_FILL_FACTOR
        return max(1.0, usable / self.row_width_bytes)

    @property
    def pages(self) -> float:
        """Number of data pages occupied by the table."""
        if self.row_count == 0:
            return 1.0
        return max(1.0, math.ceil(self.row_count / self.rows_per_page))

    @property
    def size_bytes(self) -> float:
        """Approximate on-disk size of the table in bytes."""
        return self.pages * self.page_size

    @property
    def size_mb(self) -> float:
        """Approximate on-disk size of the table in megabytes."""
        return self.size_bytes / MB

    def column(self, name: str) -> Column:
        """Return column statistics by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise ConfigurationError(f"table {self.name!r} has no column {name!r}")


@dataclass(frozen=True)
class Index:
    """A B-tree index over one table.

    Attributes:
        name: index name.
        table: name of the indexed table.
        key_width_bytes: total width of the key columns.
        unique: whether the index enforces uniqueness.
        clustered: whether the heap is clustered on this index (clustered
            indexes make range fetches mostly sequential).
    """

    name: str
    table: str
    key_width_bytes: int = 8
    unique: bool = False
    clustered: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("index name must be non-empty")
        if not self.table:
            raise ConfigurationError("index table must be non-empty")
        if self.key_width_bytes <= 0:
            raise ConfigurationError("index key_width_bytes must be positive")

    def leaf_pages(self, table: Table) -> float:
        """Number of leaf pages in the index for the given table."""
        entry_width = self.key_width_bytes + _INDEX_ENTRY_OVERHEAD
        entries_per_page = max(
            1.0, table.page_size * _PAGE_FILL_FACTOR / entry_width
        )
        if table.row_count == 0:
            return 1.0
        return max(1.0, math.ceil(table.row_count / entries_per_page))

    def height(self, table: Table) -> int:
        """Height of the B-tree (number of non-leaf levels traversed)."""
        leaves = self.leaf_pages(table)
        entry_width = self.key_width_bytes + _INDEX_ENTRY_OVERHEAD
        fanout = max(2.0, table.page_size * _PAGE_FILL_FACTOR / entry_width)
        height = 1
        pages = leaves
        while pages > 1.0:
            pages = math.ceil(pages / fanout)
            height += 1
        return height


class Database:
    """A named collection of tables and indexes with their statistics."""

    def __init__(self, name: str, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if not name:
            raise ConfigurationError("database name must be non-empty")
        if page_size <= 0:
            raise ConfigurationError("page_size must be positive")
        self.name = name
        self.page_size = page_size
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, Index] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        """Register a table; replaces any previous definition of the same name."""
        self._tables[table.name] = table
        return table

    def add_index(self, index: Index) -> Index:
        """Register an index; its table must already exist."""
        if index.table not in self._tables:
            raise ConfigurationError(
                f"cannot index unknown table {index.table!r} in database {self.name!r}"
            )
        self._indexes[index.name] = index
        return index

    def create_table(
        self,
        name: str,
        row_count: float,
        row_width_bytes: int,
        columns: Optional[List[Column]] = None,
    ) -> Table:
        """Convenience constructor that builds and registers a table."""
        table = Table(
            name=name,
            row_count=row_count,
            row_width_bytes=row_width_bytes,
            columns=tuple(columns or ()),
            page_size=self.page_size,
        )
        return self.add_table(table)

    def create_index(
        self,
        name: str,
        table: str,
        key_width_bytes: int = 8,
        unique: bool = False,
        clustered: bool = False,
    ) -> Index:
        """Convenience constructor that builds and registers an index."""
        index = Index(
            name=name,
            table=table,
            key_width_bytes=key_width_bytes,
            unique=unique,
            clustered=clustered,
        )
        return self.add_index(index)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        """Return the table with the given name."""
        try:
            return self._tables[name]
        except KeyError:
            raise ConfigurationError(
                f"database {self.name!r} has no table {name!r}"
            ) from None

    def index(self, name: str) -> Index:
        """Return the index with the given name."""
        try:
            return self._indexes[name]
        except KeyError:
            raise ConfigurationError(
                f"database {self.name!r} has no index {name!r}"
            ) from None

    def has_table(self, name: str) -> bool:
        """Whether a table with the given name exists."""
        return name in self._tables

    def has_index(self, name: str) -> bool:
        """Whether an index with the given name exists."""
        return name in self._indexes

    def indexes_on(self, table: str) -> List[Index]:
        """All indexes defined on the named table."""
        return [index for index in self._indexes.values() if index.table == table]

    @property
    def tables(self) -> List[Table]:
        """All registered tables."""
        return list(self._tables.values())

    @property
    def indexes(self) -> List[Index]:
        """All registered indexes."""
        return list(self._indexes.values())

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def total_pages(self) -> float:
        """Total data pages across tables and index leaves."""
        pages = sum(table.pages for table in self._tables.values())
        pages += sum(
            index.leaf_pages(self._tables[index.table])
            for index in self._indexes.values()
        )
        return pages

    @property
    def total_size_mb(self) -> float:
        """Total approximate size of the database on disk in megabytes."""
        return self.total_pages * self.page_size / MB

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Database(name={self.name!r}, tables={len(self._tables)}, "
            f"indexes={len(self._indexes)}, size={self.total_size_mb:.0f}MB)"
        )
