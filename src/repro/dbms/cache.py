"""Buffer cache models.

Both the optimizer cost models and the ground-truth execution model start
from the same logical page-read counts (see
:class:`repro.dbms.plans.ResourceUsage`) and then decide how many of those
reads actually reach the disk.  They use the same simple cache model but feed
it different cache sizes:

* the optimizer uses the cache size implied by its configuration parameters
  (``shared_buffers``/``effective_cache_size`` for PostgreSQL, ``bufferpool``
  for DB2), and
* the executor uses the memory the VM actually has.

The model assumes a warm cache — the paper's measurement methodology runs
every workload against a warm database cache — so a working set that fits in
the cache performs no reads at all, and a working set that does not fit
misses with probability proportional to how much of it exceeds the cache.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError


def miss_fraction(working_set_pages: float, cache_pages: float) -> float:
    """Fraction of page requests expected to miss a warm cache.

    Args:
        working_set_pages: distinct pages the query touches.
        cache_pages: pages the cache can hold.

    Returns:
        A value in ``[0, 1]``: 0 when the working set fits, approaching 1 as
        the working set dwarfs the cache.
    """
    if working_set_pages < 0 or cache_pages < 0:
        raise ConfigurationError("page counts must not be negative")
    if working_set_pages <= 0.0:
        return 0.0
    if cache_pages >= working_set_pages:
        return 0.0
    return 1.0 - cache_pages / working_set_pages


def effective_page_reads(
    logical_reads: float,
    working_set_pages: float,
    cache_pages: float,
) -> float:
    """Expected physical page reads for ``logical_reads`` requests.

    Every logical request misses with the working-set miss fraction.  The
    result is never larger than the number of logical requests and never
    negative.
    """
    if logical_reads < 0:
        raise ConfigurationError("logical_reads must not be negative")
    return logical_reads * miss_fraction(working_set_pages, cache_pages)
