"""Logical query descriptors.

The paper's workloads are sets of SQL statements.  The virtualization design
advisor never needs the SQL text itself — it only needs the query optimizer's
view of each statement (a plan and its cost under a given configuration) and
the actual behaviour when the statement runs.  We therefore describe each
statement with a :class:`QuerySpec`: the base-table accesses, the join
pipeline, the optional aggregation/sort step, and (for OLTP statements) an
update profile.

The descriptors intentionally expose the handful of properties that drive
the paper's experiments:

* per-tuple CPU work (``cpu_work_per_tuple``) distinguishes CPU-intensive
  queries such as TPC-H Q18 from I/O-bound queries such as Q21 or Q17;
* join/aggregation memory requirements make some queries memory sensitive
  (their plans change as ``work_mem``/``sortheap`` changes);
* ``hidden_memory_penalty`` models effects the optimizer does *not* capture
  (the DB2 sortheap underestimation exploited in Section 7.9);
* :class:`UpdateProfile` carries the update/locking/logging behaviour of
  OLTP statements, which the optimizer cost model ignores but the ground
  truth executor charges (the source of the Section 7.8 estimation errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..exceptions import WorkloadError


@dataclass(frozen=True)
class TableAccess:
    """One base-table access within a query.

    Attributes:
        table: name of the accessed table.
        selectivity: fraction of the table's rows that satisfy the local
            predicates and flow out of the access.
        predicates_per_row: number of predicate/expression evaluations
            applied to each scanned row (drives ``cpu_operator_cost``).
        index: name of an index usable to evaluate the predicates, if any.
        index_selectivity: fraction of the table's rows that must be fetched
            through the index before residual predicates are applied.  Only
            meaningful when ``index`` is set; defaults to ``selectivity``.
        output_width_bytes: width of the rows produced by this access.
    """

    table: str
    selectivity: float = 1.0
    predicates_per_row: float = 1.0
    index: Optional[str] = None
    index_selectivity: Optional[float] = None
    output_width_bytes: int = 64

    def __post_init__(self) -> None:
        if not self.table:
            raise WorkloadError("table access must name a table")
        if not 0.0 <= self.selectivity <= 1.0:
            raise WorkloadError(
                f"selectivity must be in [0, 1], got {self.selectivity}"
            )
        if self.index_selectivity is not None and not (
            0.0 <= self.index_selectivity <= 1.0
        ):
            raise WorkloadError(
                f"index_selectivity must be in [0, 1], got {self.index_selectivity}"
            )
        if self.predicates_per_row < 0:
            raise WorkloadError("predicates_per_row must not be negative")
        if self.output_width_bytes <= 0:
            raise WorkloadError("output_width_bytes must be positive")

    @property
    def effective_index_selectivity(self) -> float:
        """Fraction of rows fetched when the index access path is used."""
        if self.index_selectivity is not None:
            return self.index_selectivity
        return self.selectivity


@dataclass(frozen=True)
class JoinStep:
    """One step of a left-deep join pipeline.

    The running intermediate result (starting from the driver access) is
    joined with ``access``.  ``selectivity`` is expressed relative to the
    cross product of the two inputs, the convention used by textbook cost
    models, so the output cardinality is
    ``left_rows * right_rows * selectivity``.
    """

    access: TableAccess
    selectivity: float
    join_predicates: float = 1.0

    def __post_init__(self) -> None:
        if self.selectivity < 0.0 or self.selectivity > 1.0:
            raise WorkloadError(
                f"join selectivity must be in [0, 1], got {self.selectivity}"
            )
        if self.join_predicates < 0:
            raise WorkloadError("join_predicates must not be negative")


@dataclass(frozen=True)
class AggregateSpec:
    """Aggregation / grouping step applied after the joins.

    Attributes:
        group_fraction: number of output groups as a fraction of input rows
            (1.0 means no reduction, 0.0 means a single global aggregate).
        aggregates: number of aggregate expressions computed per row.
        requires_sorted_input: whether the aggregation semantics require the
            input in sorted order (forces a sort when hash aggregation is
            not chosen).
    """

    group_fraction: float = 0.0
    aggregates: float = 1.0
    requires_sorted_input: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.group_fraction <= 1.0:
            raise WorkloadError(
                f"group_fraction must be in [0, 1], got {self.group_fraction}"
            )
        if self.aggregates < 0:
            raise WorkloadError("aggregates must not be negative")


@dataclass(frozen=True)
class UpdateProfile:
    """Update/locking/logging behaviour of an OLTP statement.

    Query optimizers cost the read portion of update statements but largely
    ignore locking, logging, and page-dirtying overheads; the ground truth
    executor charges them.  This asymmetry is what makes the optimizer
    underestimate the CPU needs of TPC-C workloads in Section 7.8.

    Attributes:
        rows_written: rows inserted/updated/deleted by the statement.
        pages_dirtied: data pages written back as a result.
        log_bytes: bytes of write-ahead log generated.
        lock_wait_work_units: CPU work-unit equivalent spent on latching,
            locking, and contention handling per execution.
    """

    rows_written: float = 0.0
    pages_dirtied: float = 0.0
    log_bytes: float = 0.0
    lock_wait_work_units: float = 0.0

    def __post_init__(self) -> None:
        for name in ("rows_written", "pages_dirtied", "log_bytes", "lock_wait_work_units"):
            if getattr(self, name) < 0:
                raise WorkloadError(f"{name} must not be negative")

    @property
    def is_read_only(self) -> bool:
        """Whether the statement modifies no data."""
        return (
            self.rows_written == 0.0
            and self.pages_dirtied == 0.0
            and self.log_bytes == 0.0
        )


@dataclass(frozen=True)
class QuerySpec:
    """Logical description of one SQL statement.

    Attributes:
        name: statement identifier (e.g. ``"tpch-q18"``).
        database: name of the database the statement runs against.
        driver: the first (outer-most) base-table access.
        joins: subsequent join steps, applied left-deep in order.
        aggregate: optional aggregation applied to the join result.
        order_by: whether the final result must be sorted.
        result_rows: rows returned to the client (if ``None``, the planner's
            output cardinality estimate is used).
        cpu_work_per_tuple: ground-truth CPU work units spent per processed
            tuple; higher values make the statement CPU intensive.
        hidden_memory_penalty: extra fraction of the statement's cost that
            is incurred when sort/work memory is scarce *without* the
            optimizer modelling it (0 disables the effect).  This is the
            "optimizer underestimates the benefit of a larger sort heap"
            error exploited by Section 7.9.
        hidden_memory_requirement_mb: sort/work memory at which the hidden
            penalty fully disappears.
        update: update profile for OLTP statements.
        sql: optional reference SQL text (documentation only).
    """

    name: str
    database: str
    driver: TableAccess
    joins: Tuple[JoinStep, ...] = ()
    aggregate: Optional[AggregateSpec] = None
    order_by: bool = False
    result_rows: Optional[float] = None
    cpu_work_per_tuple: float = 1.0
    hidden_memory_penalty: float = 0.0
    hidden_memory_requirement_mb: float = 0.0
    update: Optional[UpdateProfile] = None
    sql: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("query name must be non-empty")
        if not self.database:
            raise WorkloadError("query database must be non-empty")
        if self.cpu_work_per_tuple <= 0:
            raise WorkloadError("cpu_work_per_tuple must be positive")
        if self.hidden_memory_penalty < 0:
            raise WorkloadError(
                "hidden_memory_penalty must not be negative, got "
                f"{self.hidden_memory_penalty}"
            )
        if self.hidden_memory_requirement_mb < 0:
            raise WorkloadError("hidden_memory_requirement_mb must not be negative")
        if self.result_rows is not None and self.result_rows < 0:
            raise WorkloadError("result_rows must not be negative")

    @property
    def accesses(self) -> Tuple[TableAccess, ...]:
        """All base-table accesses: the driver followed by the join inners."""
        return (self.driver,) + tuple(step.access for step in self.joins)

    @property
    def is_update(self) -> bool:
        """Whether the statement modifies data."""
        return self.update is not None and not self.update.is_read_only

    def with_name(self, name: str) -> "QuerySpec":
        """Return a copy of this spec under a different name."""
        return replace(self, name=name)

    def scaled(self, factor: float) -> "QuerySpec":
        """Return a copy with the driver access selectivity scaled.

        This is a convenience used by workload generators to create lighter
        or heavier variants of a template (e.g. the modified Q18 with an
        extra WHERE predicate used in Section 7.6).
        """
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        new_sel = min(1.0, self.driver.selectivity * factor)
        return replace(self, driver=replace(self.driver, selectivity=new_sel))
