"""Database engine simulators.

This package provides everything the virtualization design advisor needs
from a DBMS:

* a catalog with table/index statistics (:mod:`repro.dbms.catalog`),
* logical query descriptors (:mod:`repro.dbms.query`),
* physical plan operators and their resource usage (:mod:`repro.dbms.plans`),
* a planner that chooses plans under a given cost model
  (:mod:`repro.dbms.planner`),
* two concrete engines modelled after the paper's targets — PostgreSQL
  (:mod:`repro.dbms.postgres`) and DB2 (:mod:`repro.dbms.db2`) — each with
  its own optimizer parameters and cost units, and
* a ground-truth execution model (:mod:`repro.dbms.execution`) that produces
  the "actual" run times observed when a workload executes inside a VM.
"""

from .catalog import Column, Database, Index, Table
from .interface import DatabaseEngine, EngineConfiguration
from .plans import PlanNode, ResourceUsage
from .query import AggregateSpec, JoinStep, QuerySpec, TableAccess, UpdateProfile

__all__ = [
    "AggregateSpec",
    "Column",
    "Database",
    "DatabaseEngine",
    "EngineConfiguration",
    "Index",
    "JoinStep",
    "PlanNode",
    "QuerySpec",
    "ResourceUsage",
    "Table",
    "TableAccess",
    "UpdateProfile",
]
