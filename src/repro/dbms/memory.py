"""Memory configuration policies.

The paper distinguishes *prescriptive* optimizer parameters — those that
actually configure the DBMS, such as the PostgreSQL ``shared_buffers`` and
``work_mem`` or the DB2 ``bufferpool`` and ``sortheap`` — from *descriptive*
parameters that merely characterise the execution environment.  Prescriptive
parameters must follow whatever policy the administrator uses to size the
DBMS for its virtual machine, and the calibration procedure has to mimic
that policy (Section 4.3).

This module implements those policies.  The defaults are the ones used in
the paper's experiments:

* PostgreSQL: ``shared_buffers`` = 10/16 of the VM's memory, ``work_mem`` =
  5 MB regardless of the VM's memory.
* DB2: ``bufferpool`` = 70% of the free memory, the remainder to
  ``sortheap``.

Both policies also support the "fixed" variants the paper uses for its
CPU-only experiments (e.g. PostgreSQL with 32 MB of shared buffers, DB2 with
a 190 MB buffer pool and a 40 MB sort heap).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError
from ..units import validate_non_negative, validate_positive


@dataclass(frozen=True)
class MemoryConfiguration:
    """Concrete memory settings of a DBMS instance inside a VM.

    Attributes:
        buffer_pool_mb: memory dedicated to caching data pages.
        work_mem_mb: memory available to each sort/hash operator.
        os_cache_mb: memory the operating system can use for its file cache
            (whatever the DBMS did not claim); contributes to the *actual*
            caching seen at run time but is typically invisible to the
            optimizer.
    """

    buffer_pool_mb: float
    work_mem_mb: float
    os_cache_mb: float = 0.0

    def __post_init__(self) -> None:
        validate_non_negative(self.buffer_pool_mb, "buffer_pool_mb")
        validate_positive(self.work_mem_mb, "work_mem_mb")
        validate_non_negative(self.os_cache_mb, "os_cache_mb")

    @property
    def total_cache_mb(self) -> float:
        """Total memory that can hold data pages at run time."""
        return self.buffer_pool_mb + self.os_cache_mb


class MemoryPolicy(ABC):
    """Maps the memory available to a DBMS to its memory configuration."""

    @abstractmethod
    def configure(self, dbms_memory_mb: float) -> MemoryConfiguration:
        """Return the memory configuration for ``dbms_memory_mb`` of memory."""

    def __call__(self, dbms_memory_mb: float) -> MemoryConfiguration:
        return self.configure(dbms_memory_mb)


class PostgresMemoryPolicy(MemoryPolicy):
    """PostgreSQL memory sizing policy.

    By default, ``shared_buffers`` is 10/16 of the available memory and
    ``work_mem`` stays at 5 MB regardless of the allocation, mirroring the
    paper's PostgreSQL setup.  A fixed shared-buffer size can be supplied for
    experiments that hold memory constant.
    """

    def __init__(
        self,
        shared_buffers_fraction: float = 10.0 / 16.0,
        work_mem_mb: float = 5.0,
        fixed_shared_buffers_mb: Optional[float] = None,
    ) -> None:
        if not 0.0 < shared_buffers_fraction <= 1.0:
            raise ConfigurationError(
                "shared_buffers_fraction must be in (0, 1], got "
                f"{shared_buffers_fraction}"
            )
        self.shared_buffers_fraction = shared_buffers_fraction
        self.work_mem_mb = validate_positive(work_mem_mb, "work_mem_mb")
        if fixed_shared_buffers_mb is not None:
            fixed_shared_buffers_mb = validate_positive(
                fixed_shared_buffers_mb, "fixed_shared_buffers_mb"
            )
        self.fixed_shared_buffers_mb = fixed_shared_buffers_mb

    def configure(self, dbms_memory_mb: float) -> MemoryConfiguration:
        dbms_memory_mb = max(0.0, float(dbms_memory_mb))
        if self.fixed_shared_buffers_mb is not None:
            buffer_pool = min(self.fixed_shared_buffers_mb, dbms_memory_mb)
        else:
            buffer_pool = dbms_memory_mb * self.shared_buffers_fraction
        os_cache = max(0.0, dbms_memory_mb - buffer_pool - self.work_mem_mb)
        return MemoryConfiguration(
            buffer_pool_mb=buffer_pool,
            work_mem_mb=self.work_mem_mb,
            os_cache_mb=os_cache,
        )


class DB2MemoryPolicy(MemoryPolicy):
    """DB2 memory sizing policy.

    By default, 70% of the available memory goes to the buffer pool and the
    remainder to the sort heap, as in the paper's experiments.  Fixed sizes
    can be supplied for the CPU-only experiments (190 MB buffer pool, 40 MB
    sort heap).
    """

    def __init__(
        self,
        bufferpool_fraction: float = 0.7,
        fixed_bufferpool_mb: Optional[float] = None,
        fixed_sortheap_mb: Optional[float] = None,
        min_sortheap_mb: float = 4.0,
    ) -> None:
        if not 0.0 < bufferpool_fraction < 1.0:
            raise ConfigurationError(
                f"bufferpool_fraction must be in (0, 1), got {bufferpool_fraction}"
            )
        self.bufferpool_fraction = bufferpool_fraction
        self.fixed_bufferpool_mb = fixed_bufferpool_mb
        self.fixed_sortheap_mb = fixed_sortheap_mb
        self.min_sortheap_mb = validate_positive(min_sortheap_mb, "min_sortheap_mb")

    def configure(self, dbms_memory_mb: float) -> MemoryConfiguration:
        dbms_memory_mb = max(0.0, float(dbms_memory_mb))
        if self.fixed_bufferpool_mb is not None:
            buffer_pool = min(self.fixed_bufferpool_mb, dbms_memory_mb)
        else:
            buffer_pool = dbms_memory_mb * self.bufferpool_fraction
        if self.fixed_sortheap_mb is not None:
            sortheap = self.fixed_sortheap_mb
        else:
            sortheap = max(self.min_sortheap_mb, dbms_memory_mb - buffer_pool)
        os_cache = max(0.0, dbms_memory_mb - buffer_pool - sortheap)
        return MemoryConfiguration(
            buffer_pool_mb=buffer_pool,
            work_mem_mb=sortheap,
            os_cache_mb=os_cache,
        )


class FixedMemoryPolicy(MemoryPolicy):
    """A policy that returns the same configuration regardless of memory.

    Useful in tests and in the CPU-only experiments where the paper holds
    the DBMS memory configuration constant.
    """

    def __init__(self, buffer_pool_mb: float, work_mem_mb: float,
                 os_cache_mb: float = 0.0) -> None:
        self._configuration = MemoryConfiguration(
            buffer_pool_mb=buffer_pool_mb,
            work_mem_mb=work_mem_mb,
            os_cache_mb=os_cache_mb,
        )

    def configure(self, dbms_memory_mb: float) -> MemoryConfiguration:
        return self._configuration
