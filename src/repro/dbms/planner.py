"""Cost-based query planner shared by the engine simulators.

The planner builds a left-deep physical plan for a :class:`QuerySpec`,
choosing among the access and join alternatives with whatever cost model the
calling engine supplies.  Because the choices depend on the cost model's
parameters — in particular the sort/hash memory and the cache size — the
*same* logical query gets different plans under different candidate resource
allocations, which is exactly the behaviour the paper's piecewise-linear
memory model captures (plan boundaries define the ``A_ij`` intervals of
Section 5.1).
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple

from ..exceptions import OptimizationError
from .catalog import Database
from .plans import (
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    NestedLoopJoinNode,
    PlanBuildContext,
    PlanNode,
    QueryPlan,
    ResultNode,
    SeqScanNode,
    SortAggregateNode,
    SortMergeJoinNode,
    SortNode,
    UpdateNode,
)
from .query import JoinStep, QuerySpec, TableAccess


class PlanCostModel(Protocol):
    """Minimal interface the planner needs from an engine cost model."""

    def plan_cost(self, usage) -> float:  # pragma: no cover - protocol
        """Return the engine-native cost of a plan's resource usage."""
        ...


#: Nested-loop joins are only considered when the inner input is small;
#: this mirrors real optimizers' pruning and keeps planning fast.
_NESTED_LOOP_INNER_ROW_LIMIT = 50_000.0


class Planner:
    """Builds physical plans for logical queries under a cost model."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def build_plan(
        self,
        query: QuerySpec,
        context: PlanBuildContext,
        cost_model: PlanCostModel,
    ) -> QueryPlan:
        """Return the cheapest plan for ``query`` under ``cost_model``."""
        if query.database != self.database.name:
            raise OptimizationError(
                f"query {query.name!r} targets database {query.database!r} but the "
                f"planner is bound to {self.database.name!r}"
            )
        node = self._best_access(query.driver, context, cost_model)
        for step in query.joins:
            node = self._best_join(node, step, context, cost_model)
        if query.aggregate is not None:
            node = self._best_aggregate(node, query, context, cost_model)
        if query.order_by:
            node = SortNode(node, context)
        root: PlanNode = ResultNode(node, query.result_rows)
        if query.update is not None and not query.update.is_read_only:
            root = UpdateNode(root, query.update, context)
        return QueryPlan(query=query, root=root, context=context)

    # ------------------------------------------------------------------
    # Alternatives
    # ------------------------------------------------------------------
    def access_alternatives(
        self, access: TableAccess, context: PlanBuildContext
    ) -> List[PlanNode]:
        """All physical access paths available for a base-table access."""
        alternatives: List[PlanNode] = [SeqScanNode(access, context)]
        if access.index is not None and self.database.has_index(access.index):
            alternatives.append(IndexScanNode(access, context))
        return alternatives

    def join_alternatives(
        self,
        outer: PlanNode,
        step: JoinStep,
        context: PlanBuildContext,
        cost_model: PlanCostModel,
    ) -> List[PlanNode]:
        """All physical join alternatives for one join step."""
        inner = self._best_access(step.access, context, cost_model)
        alternatives: List[PlanNode] = [
            HashJoinNode(outer, inner, step.selectivity, step.join_predicates, context),
            SortMergeJoinNode(
                outer, inner, step.selectivity, step.join_predicates, context
            ),
        ]
        if inner.rows <= _NESTED_LOOP_INNER_ROW_LIMIT:
            alternatives.append(
                NestedLoopJoinNode(
                    outer, inner, step.selectivity, step.join_predicates, context
                )
            )
        return alternatives

    # ------------------------------------------------------------------
    # Choice helpers
    # ------------------------------------------------------------------
    def _best_access(
        self,
        access: TableAccess,
        context: PlanBuildContext,
        cost_model: PlanCostModel,
    ) -> PlanNode:
        return self._cheapest(self.access_alternatives(access, context), cost_model)

    def _best_join(
        self,
        outer: PlanNode,
        step: JoinStep,
        context: PlanBuildContext,
        cost_model: PlanCostModel,
    ) -> PlanNode:
        return self._cheapest(
            self.join_alternatives(outer, step, context, cost_model), cost_model
        )

    def _best_aggregate(
        self,
        node: PlanNode,
        query: QuerySpec,
        context: PlanBuildContext,
        cost_model: PlanCostModel,
    ) -> PlanNode:
        spec = query.aggregate
        assert spec is not None  # caller checks
        alternatives: List[PlanNode] = [SortAggregateNode(node, spec, context)]
        if HashAggregateNode.fits_in_memory(node, spec, context):
            alternatives.append(HashAggregateNode(node, spec, context))
        return self._cheapest(alternatives, cost_model)

    @staticmethod
    def _cheapest(alternatives: Sequence[PlanNode], cost_model: PlanCostModel) -> PlanNode:
        if not alternatives:
            raise OptimizationError("no plan alternatives were generated")
        best: Optional[PlanNode] = None
        best_cost = float("inf")
        for node in alternatives:
            cost = cost_model.plan_cost(node.total_usage())
            if cost < best_cost:
                best = node
                best_cost = cost
        assert best is not None
        return best
