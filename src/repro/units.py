"""Small unit-conversion helpers used throughout the library.

The simulator expresses memory in megabytes, time in seconds, and resource
allocations as fractions in ``[0, 1]``.  These helpers keep conversions
explicit and give validation errors early instead of letting bad values
propagate into cost formulas.

This module is the canonical home of the conversion helpers;
:mod:`repro.workloads.units` (the workload-composition units of
Sections 7.3–7.4) re-exports them for backwards compatibility.
"""

from __future__ import annotations

from .exceptions import ConfigurationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Default page size used by both simulated engines (bytes), matching the
#: 8 KB PostgreSQL page size referenced by the paper's calibration programs.
DEFAULT_PAGE_SIZE = 8 * KB


def mb(value: float) -> float:
    """Return ``value`` megabytes expressed in bytes."""
    return float(value) * MB


def gb(value: float) -> float:
    """Return ``value`` gigabytes expressed in bytes."""
    return float(value) * GB


def bytes_to_mb(value: float) -> float:
    """Return ``value`` bytes expressed in megabytes."""
    return float(value) / MB


def bytes_to_pages(value: float, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the number of whole pages needed to hold ``value`` bytes."""
    if page_size <= 0:
        raise ConfigurationError(f"page_size must be positive, got {page_size}")
    if value <= 0:
        return 0
    return int((float(value) + page_size - 1) // page_size)


def ms(value: float) -> float:
    """Return ``value`` milliseconds expressed in seconds."""
    return float(value) / 1000.0


def seconds_to_ms(value: float) -> float:
    """Return ``value`` seconds expressed in milliseconds."""
    return float(value) * 1000.0


def validate_fraction(value: float, name: str = "fraction") -> float:
    """Validate that ``value`` is a share in ``[0, 1]`` and return it.

    Raises:
        ConfigurationError: if the value lies outside the unit interval.
    """
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value}")
    return value


def validate_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive and return it."""
    value = float(value)
    if value <= 0.0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def validate_non_negative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is not negative and return it."""
    value = float(value)
    if value < 0.0:
        raise ConfigurationError(f"{name} must not be negative, got {value}")
    return value


def clamp(value: float, lower: float, upper: float) -> float:
    """Clamp ``value`` into the closed interval ``[lower, upper]``."""
    if lower > upper:
        raise ConfigurationError(
            f"invalid clamp interval: lower={lower} exceeds upper={upper}"
        )
    return max(lower, min(upper, value))
