"""Performance and modeling-error metrics used throughout the paper."""

from __future__ import annotations

from ..exceptions import MonitoringError


def degradation(cost: float, full_allocation_cost: float) -> float:
    """``Degradation(W, R) = Cost(W, R) / Cost(W, [1, ..., 1])`` (Section 3)."""
    if cost < 0 or full_allocation_cost < 0:
        raise MonitoringError("costs must not be negative")
    if full_allocation_cost == 0:
        return 1.0
    return cost / full_allocation_cost


def relative_improvement(default_cost: float, new_cost: float) -> float:
    """``(T_default - T_new) / T_default`` — the paper's performance metric.

    Positive values mean the new configuration is better than the default
    ``1/N`` allocation; negative values mean it is worse.
    """
    if default_cost < 0 or new_cost < 0:
        raise MonitoringError("costs must not be negative")
    if default_cost == 0:
        return 0.0
    return (default_cost - new_cost) / default_cost


def improvement_over_default(problem, allocations, cost_function) -> float:
    """Relative improvement of ``allocations`` over the default ``1/N`` split.

    ``cost_function`` is anything with ``total_cost(allocations)`` — a
    what-if estimator for estimated improvement or an actual-cost function
    for measured improvement.  This is the one implementation behind the
    advisor facades' and the experiment harness's ``measured_improvement``.
    """
    default_cost = cost_function.total_cost(problem.default_allocation())
    return relative_improvement(default_cost, cost_function.total_cost(allocations))


def relative_modeling_error(estimated: float, actual: float) -> float:
    """``E_ip``: relative error between estimated and observed cost (Section 6)."""
    if estimated < 0 or actual < 0:
        raise MonitoringError("costs must not be negative")
    if actual == 0:
        return 0.0 if estimated == 0 else float("inf")
    return abs(estimated - actual) / actual


def relative_workload_change(previous_average: float, current_average: float) -> float:
    """Relative change in average estimated cost per query between periods."""
    if previous_average < 0 or current_average < 0:
        raise MonitoringError("average costs must not be negative")
    if previous_average == 0:
        return 0.0 if current_average == 0 else float("inf")
    return abs(current_average - previous_average) / previous_average
