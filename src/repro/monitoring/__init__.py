"""Run-time monitoring support.

The advisor's online refinement (Section 5) and dynamic configuration
management (Section 6) both consume run-time observations: actual workload
execution times per monitoring period, the relative modeling error ``E_ip``,
and the relative change in average estimated query cost used to classify
workload changes as minor or major.
"""

from .metrics import (
    degradation,
    relative_improvement,
    relative_modeling_error,
    relative_workload_change,
)
from .monitor import PeriodObservation, WorkloadMonitor

__all__ = [
    "PeriodObservation",
    "WorkloadMonitor",
    "degradation",
    "relative_improvement",
    "relative_modeling_error",
    "relative_workload_change",
]
