"""Per-workload monitoring history.

A :class:`WorkloadMonitor` records, for one consolidated workload, the
observations collected at the end of each monitoring period: the workload
served, the resource allocation in force, the estimated and actual costs,
and the average estimated cost per query.  From this history it derives the
two signals the dynamic configuration manager needs:

* the *workload change* classification (none / minor / major) based on the
  relative change in average estimated cost per query, with the paper's
  θ = 10% threshold, and
* the *relative modeling error* ``E_ip`` with its 5% threshold, used to
  decide whether online refinement can absorb a minor change that arrives
  before refinement has converged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.problem import ResourceAllocation
from ..exceptions import MonitoringError
from ..workloads.workload import Workload
from .metrics import relative_modeling_error, relative_workload_change

#: Default workload-change threshold θ (Section 6.1).
DEFAULT_CHANGE_THRESHOLD = 0.10

#: Default modeling-error threshold (Section 6.2).
DEFAULT_ERROR_THRESHOLD = 0.05

#: Workload-change classifications.
CHANGE_NONE = "none"
CHANGE_MINOR = "minor"
CHANGE_MAJOR = "major"


@dataclass(frozen=True)
class PeriodObservation:
    """Everything observed about one workload during one monitoring period."""

    period: int
    workload: Workload
    allocation: ResourceAllocation
    estimated_cost: float
    actual_cost: float
    average_query_cost: float

    @property
    def modeling_error(self) -> float:
        """Relative modeling error ``E_ip`` for this period."""
        return relative_modeling_error(self.estimated_cost, self.actual_cost)


class WorkloadMonitor:
    """History of monitoring-period observations for one workload."""

    def __init__(
        self,
        name: str,
        change_threshold: float = DEFAULT_CHANGE_THRESHOLD,
        error_threshold: float = DEFAULT_ERROR_THRESHOLD,
    ) -> None:
        if change_threshold <= 0 or error_threshold <= 0:
            raise MonitoringError("thresholds must be positive")
        self.name = name
        self.change_threshold = change_threshold
        self.error_threshold = error_threshold
        self._history: List[PeriodObservation] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, observation: PeriodObservation) -> None:
        """Append one period's observation to the history."""
        if self._history and observation.period <= self._history[-1].period:
            raise MonitoringError(
                f"monitoring periods must be recorded in increasing order "
                f"(got {observation.period} after {self._history[-1].period})"
            )
        self._history.append(observation)

    @property
    def history(self) -> List[PeriodObservation]:
        """All recorded observations, oldest first."""
        return list(self._history)

    @property
    def latest(self) -> Optional[PeriodObservation]:
        """The most recent observation, if any."""
        return self._history[-1] if self._history else None

    @property
    def previous(self) -> Optional[PeriodObservation]:
        """The observation before the most recent one, if any."""
        return self._history[-2] if len(self._history) >= 2 else None

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def change_classification(self) -> str:
        """Classify the latest workload change (none / minor / major)."""
        if self.latest is None or self.previous is None:
            return CHANGE_NONE
        change = relative_workload_change(
            self.previous.average_query_cost, self.latest.average_query_cost
        )
        if change == 0.0:
            return CHANGE_NONE
        return CHANGE_MAJOR if change > self.change_threshold else CHANGE_MINOR

    def modeling_error(self, period_offset: int = 0) -> float:
        """``E_ip`` for the latest (offset 0) or an earlier period."""
        index = -1 - period_offset
        try:
            observation = self._history[index]
        except IndexError:
            raise MonitoringError(
                f"no observation at offset {period_offset} for workload {self.name!r}"
            ) from None
        return observation.modeling_error

    def refinement_can_continue(self) -> bool:
        """Decide whether refinement can absorb a minor change (Section 6.2).

        Refinement continues when the modeling errors before and after the
        change are both below the threshold, or when the error is
        decreasing; otherwise the cost model should be discarded.
        """
        if len(self._history) < 2:
            return True
        current = self.modeling_error(0)
        previous = self.modeling_error(1)
        if current <= self.error_threshold and previous <= self.error_threshold:
            return True
        return current < previous
