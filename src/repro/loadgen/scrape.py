"""White-box server scrapes: joining ``/metrics`` + ``/stats`` to a load run.

The load generator measures the service from the outside; this module
reads what the *server* said about the same interval, so a
:class:`~repro.loadgen.report.LoadReport` can put black-box symptom and
white-box cause side by side: a climbing client p95 next to the server's
own request-latency histogram (queueing vs. service time), the in-flight
gauge, the cost-cache hit rate, and the placement solve-memo traffic.

Scrapes are taken before and after a run (plus a low-rate ``/stats``
sampler *during* it, for the in-flight peak — a gauge read only at the
quiet endpoints of a run would never show saturation).  The difference
of two scrapes is computed here: counter deltas, and server-side latency
quantiles estimated from the *difference* of the cumulative histogram
buckets via :func:`repro.telemetry.metrics.quantile_from_buckets` — the
same estimator the client-side SLIs use, applied to the window the run
spans.

Parsing covers exactly the subset of the Prometheus text format the
repo's own :meth:`~repro.telemetry.metrics.MetricsRegistry.render`
emits; it is a measurement tool, not a general scraper.
"""

from __future__ import annotations

import json
import math
import re
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..exceptions import LoadGenError
from ..telemetry.metrics import quantile_from_buckets

__all__ = [
    "Sample",
    "ServerScrape",
    "parse_prometheus_text",
    "scrape_server",
    "scrape_delta",
]

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


@dataclass(frozen=True)
class Sample:
    """One exposition line: metric name, sorted labels, value."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float

    def label(self, key: str) -> Optional[str]:
        """The value of one label (``None`` when absent)."""
        for name, value in self.labels:
            if name == key:
                return value
        return None


def parse_prometheus_text(text: str) -> List[Sample]:
    """Parse exposition text into samples (comment lines skipped)."""
    samples: List[Sample] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise LoadGenError(f"unparseable metrics line: {line!r}")
        labels = tuple(
            (key, value.replace('\\"', '"').replace("\\\\", "\\"))
            for key, value in _LABEL_PAIR.findall(match.group("labels") or "")
        )
        samples.append(
            Sample(
                name=match.group("name"),
                labels=labels,
                value=_parse_value(match.group("value")),
            )
        )
    return samples


@dataclass(frozen=True)
class ServerScrape:
    """One moment's server self-report: parsed ``/metrics`` + raw ``/stats``."""

    samples: Tuple[Sample, ...]
    stats: Dict[str, Any] = field(default_factory=dict)

    def value(self, name: str, **labels: str) -> Optional[float]:
        """The value of one sample with exactly-matching labels."""
        wanted = tuple(sorted(labels.items()))
        for sample in self.samples:
            if sample.name == name and tuple(sorted(sample.labels)) == wanted:
                return sample.value
        return None

    def values(self, name: str, by: str) -> Dict[str, float]:
        """All of one family's sample values, keyed by the ``by`` label."""
        out: Dict[str, float] = {}
        for sample in self.samples:
            if sample.name == name:
                key = sample.label(by)
                if key is not None:
                    out[key] = out.get(key, 0.0) + sample.value
        return out

    def buckets(self, name: str, **labels: str) -> List[Tuple[float, int]]:
        """Cumulative ``(bound, count)`` pairs of one histogram child."""
        pairs: List[Tuple[float, int]] = []
        for sample in self.samples:
            if sample.name != name + "_bucket":
                continue
            if any(sample.label(key) != value for key, value in labels.items()):
                continue
            bound = sample.label("le")
            if bound is None:
                continue
            pairs.append((_parse_value(bound), int(sample.value)))
        pairs.sort(key=lambda pair: pair[0])
        return pairs


def _get_json(url: str, timeout: float) -> Dict[str, Any]:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def _get_text(url: str, timeout: float) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def scrape_server(url: str, timeout: float = 10.0) -> ServerScrape:
    """GET ``/metrics`` and ``/stats`` from a served advisor."""
    try:
        metrics_text = _get_text(url.rstrip("/") + "/metrics", timeout)
        stats = _get_json(url.rstrip("/") + "/stats", timeout)
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
        raise LoadGenError(f"cannot scrape {url}: {error}") from error
    return ServerScrape(
        samples=tuple(parse_prometheus_text(metrics_text)), stats=stats
    )


def _delta_by_label(
    before: ServerScrape, after: ServerScrape, name: str, by: str
) -> Dict[str, float]:
    earlier = before.values(name, by)
    later = after.values(name, by)
    return {
        key: value - earlier.get(key, 0.0)
        for key, value in sorted(later.items())
        if value - earlier.get(key, 0.0) != 0.0
    }


def _latency_window(
    before: ServerScrape, after: ServerScrape, endpoint: str
) -> Optional[Dict[str, Optional[float]]]:
    """Server-side request latency for one endpoint over the run window."""
    name = "repro_request_latency_seconds"
    count_before = before.value(name + "_count", endpoint=endpoint) or 0.0
    count_after = after.value(name + "_count", endpoint=endpoint) or 0.0
    count = count_after - count_before
    if count <= 0:
        return None
    sum_before = before.value(name + "_sum", endpoint=endpoint) or 0.0
    sum_after = after.value(name + "_sum", endpoint=endpoint) or 0.0
    bucket_before = dict(before.buckets(name, endpoint=endpoint))
    window = [
        (bound, int(counted - bucket_before.get(bound, 0)))
        for bound, counted in after.buckets(name, endpoint=endpoint)
    ]
    return {
        "count": count,
        "mean_seconds": (sum_after - sum_before) / count,
        "p50_seconds": quantile_from_buckets(window, 0.50),
        "p95_seconds": quantile_from_buckets(window, 0.95),
        "p99_seconds": quantile_from_buckets(window, 0.99),
    }


def scrape_delta(before: ServerScrape, after: ServerScrape) -> Dict[str, Any]:
    """What the server recorded between two scrapes, as a JSON-safe dict.

    Counter families are differenced per label; the server's own request
    latency histogram is differenced bucket-by-bucket and summarized with
    the shared quantile estimator — this is the *service time + server
    queueing* the client-side latency is correlated against.
    """
    requests = _delta_by_label(
        before, after, "repro_requests_total", "endpoint"
    )
    latency = {
        endpoint: window
        for endpoint in sorted(requests)
        if (window := _latency_window(before, after, endpoint)) is not None
    }
    cache_hits = _delta_by_label(
        before, after, "repro_solve_memo_lookups_total", "result"
    )
    stats_before = before.stats.get("cost_cache", {})
    stats_after = after.stats.get("cost_cache", {})
    return {
        "requests_total": requests,
        "http_requests_total": _delta_by_label(
            before, after, "repro_http_requests_total", "endpoint"
        ),
        "request_latency": latency,
        "solve_memo_lookups": cache_hits,
        "cost_cache": {
            key: stats_after.get(key, 0) - stats_before.get(key, 0)
            for key in ("evaluations", "cache_hits", "cache_misses")
            if isinstance(stats_after.get(key), (int, float))
            and isinstance(stats_before.get(key), (int, float))
        },
    }
