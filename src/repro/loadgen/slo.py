"""Declarative SLOs and their evaluation against measured SLIs.

An :class:`SloSpec` states what "the service holds up" means — latency
quantile targets, a maximum error rate, a minimum throughput — as data,
JSON round-trippable like every other problem document in the system.
:func:`evaluate_slo` turns a spec plus the indicators one load run
measured into an :class:`SloEvaluation`: one verdict per stated
objective, each carrying its target *and* the observed value, so a
report reader (or the saturation sweep deciding whether to push the next
load step) never has to re-derive why a run passed or failed.

Objectives are opt-in: a spec only evaluates the targets it sets, and a
target whose indicator could not be measured at all (e.g. a latency
quantile when every request errored) fails rather than vacuously passes
— an unmeasurable SLI is an outage, not a success.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..exceptions import ConfigurationError

__all__ = ["SloSpec", "SloObjective", "SloEvaluation", "evaluate_slo"]

#: Objective names, in evaluation order.
_LATENCY_OBJECTIVES = (
    ("p50_seconds", 0.50),
    ("p95_seconds", 0.95),
    ("p99_seconds", 0.99),
)


@dataclass(frozen=True)
class SloSpec:
    """Service-level objectives for one load run, all optional.

    Attributes:
        p50_seconds / p95_seconds / p99_seconds: client-observed latency
            quantile ceilings (measured from the *scheduled* arrival
            time, so queueing counts).
        max_error_rate: ceiling on ``errors / completed`` (0.0 = no
            errors tolerated).
        min_throughput_rps: floor on achieved successful
            requests/second.
    """

    p50_seconds: Optional[float] = None
    p95_seconds: Optional[float] = None
    p99_seconds: Optional[float] = None
    max_error_rate: Optional[float] = None
    min_throughput_rps: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("p50_seconds", "p95_seconds", "p99_seconds",
                     "min_throughput_rps"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"SLO {name} must be positive, got {value}"
                )
        if self.max_error_rate is not None and not 0.0 <= self.max_error_rate <= 1.0:
            raise ConfigurationError(
                f"SLO max_error_rate must be in [0, 1], got {self.max_error_rate}"
            )

    @property
    def empty(self) -> bool:
        """Whether the spec states no objectives at all."""
        return all(
            getattr(self, field) is None for field in self.__dataclass_fields__
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SloSpec":
        """Build a spec from a plain dictionary."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown SLO option(s) {', '.join(map(repr, unknown))}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        return cls(**{key: data[key] for key in data})

    @classmethod
    def from_json(cls, document: Union[str, bytes]) -> "SloSpec":
        """Build a spec from a JSON document."""
        return cls.from_dict(json.loads(document))

    def to_dict(self) -> Dict[str, Any]:
        """The spec as a JSON-safe dictionary (round-trips via from_dict)."""
        return {
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "p99_seconds": self.p99_seconds,
            "max_error_rate": self.max_error_rate,
            "min_throughput_rps": self.min_throughput_rps,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)


@dataclass(frozen=True)
class SloObjective:
    """One evaluated objective: target, observation, verdict.

    ``observed`` is ``None`` when the indicator could not be measured
    (which counts as a failure — see the module docstring).
    """

    name: str
    target: float
    observed: Optional[float]
    ok: bool

    def to_dict(self) -> Dict[str, Any]:
        """The objective as a JSON-safe dictionary."""
        return {
            "name": self.name,
            "target": self.target,
            "observed": self.observed,
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SloObjective":
        """Rebuild an objective from its dictionary form."""
        return cls(
            name=data["name"],
            target=data["target"],
            observed=data.get("observed"),
            ok=data["ok"],
        )


@dataclass(frozen=True)
class SloEvaluation:
    """Every stated objective's verdict for one load run."""

    spec: SloSpec
    objectives: Tuple[SloObjective, ...]

    @property
    def ok(self) -> bool:
        """Whether every stated objective held (vacuously true if none)."""
        return all(objective.ok for objective in self.objectives)

    @property
    def breached(self) -> Tuple[str, ...]:
        """Names of the objectives that failed."""
        return tuple(o.name for o in self.objectives if not o.ok)

    def to_dict(self) -> Dict[str, Any]:
        """The evaluation as a JSON-safe dictionary."""
        return {
            "ok": self.ok,
            "breached": list(self.breached),
            "spec": self.spec.to_dict(),
            "objectives": [objective.to_dict() for objective in self.objectives],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SloEvaluation":
        """Rebuild an evaluation from its dictionary form."""
        return cls(
            spec=SloSpec.from_dict(data["spec"]),
            objectives=tuple(
                SloObjective.from_dict(objective)
                for objective in data["objectives"]
            ),
        )


def evaluate_slo(
    spec: SloSpec,
    quantiles: Mapping[str, Optional[float]],
    error_rate: Optional[float],
    throughput_rps: Optional[float],
) -> SloEvaluation:
    """Evaluate a spec against one run's measured indicators.

    Args:
        spec: the objectives to check.
        quantiles: measured client-side latency quantiles keyed ``"p50"``
            / ``"p95"`` / ``"p99"`` (missing or ``None`` = unmeasured).
        error_rate: measured ``errors / completed`` (``None`` =
            unmeasured).
        throughput_rps: measured successful requests/second.
    """
    objectives = []
    for field, quantile in _LATENCY_OBJECTIVES:
        target = getattr(spec, field)
        if target is None:
            continue
        observed = quantiles.get(f"p{int(quantile * 100)}")
        objectives.append(
            SloObjective(
                name=field,
                target=target,
                observed=observed,
                ok=observed is not None and observed <= target,
            )
        )
    if spec.max_error_rate is not None:
        objectives.append(
            SloObjective(
                name="max_error_rate",
                target=spec.max_error_rate,
                observed=error_rate,
                ok=error_rate is not None and error_rate <= spec.max_error_rate,
            )
        )
    if spec.min_throughput_rps is not None:
        objectives.append(
            SloObjective(
                name="min_throughput_rps",
                target=spec.min_throughput_rps,
                observed=throughput_rps,
                ok=(
                    throughput_rps is not None
                    and throughput_rps >= spec.min_throughput_rps
                ),
            )
        )
    return SloEvaluation(spec=spec, objectives=tuple(objectives))
