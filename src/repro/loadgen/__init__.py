"""Open-workload load generation and SLO evaluation for the serving tier.

The serving tier (``python -m repro serve``) exposes the advisor over
HTTP; this package measures whether that tier *holds up*: an open-loop
arrival scheduler (:mod:`~repro.loadgen.schedule`) decides up front when
every request fires, a multi-worker client (:mod:`~repro.loadgen.client`)
fires them on time regardless of completions, a declarative SLO layer
(:mod:`~repro.loadgen.slo`) turns the measured SLIs into verdicts, and a
saturation sweep (:mod:`~repro.loadgen.sweep`) steps the offered load
until the SLO breaks — the empirical answer to "how big a workload can
this deployment carry".

Every run correlates the black-box client view with the server's own
telemetry (:mod:`~repro.loadgen.scrape`): the resulting
:class:`~repro.loadgen.report.LoadReport` puts a breached p95 next to
the in-flight peak, the server-side service-time window, and the cache
traffic that explain it.  The CLI front-end is
``python -m repro loadgen``.
"""

from .client import LOADGEN_BUCKETS, LoadRunner, RequestTemplate
from .report import LoadReport
from .schedule import (
    Arrival,
    ArrivalSchedule,
    ArrivalSpec,
    SHAPES,
    schedule_from_spec,
    schedule_from_trace,
)
from .scrape import (
    Sample,
    ServerScrape,
    parse_prometheus_text,
    scrape_delta,
    scrape_server,
)
from .slo import SloEvaluation, SloObjective, SloSpec, evaluate_slo
from .sweep import DEFAULT_SWEEP_SLO, SaturationReport, saturation_sweep

__all__ = [
    "Arrival",
    "ArrivalSchedule",
    "ArrivalSpec",
    "SHAPES",
    "schedule_from_spec",
    "schedule_from_trace",
    "LoadRunner",
    "RequestTemplate",
    "LOADGEN_BUCKETS",
    "LoadReport",
    "SloSpec",
    "SloObjective",
    "SloEvaluation",
    "evaluate_slo",
    "Sample",
    "ServerScrape",
    "parse_prometheus_text",
    "scrape_server",
    "scrape_delta",
    "SaturationReport",
    "saturation_sweep",
    "DEFAULT_SWEEP_SLO",
]
