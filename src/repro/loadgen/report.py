"""The serializable outcome of one load run: SLIs, SLO verdicts, causes.

A :class:`LoadReport` is to the load generator what
:class:`~repro.traces.ReplayReport` is to the replayer — one JSON
round-trippable document carrying everything the run measured:

* the **offered** side (schedule name, request count, offered rate,
  seed — enough to regenerate the exact arrival schedule),
* the **observed** client side (completion/error counts, achieved
  throughput, latency quantiles estimated from the run's own
  fixed-bucket histograms via
  :meth:`~repro.telemetry.metrics.Histogram.quantile`, per-endpoint
  breakdowns, and the dispatch-delay summary that certifies the run
  actually behaved open-loop),
* the **SLO verdicts** (:class:`~repro.loadgen.slo.SloEvaluation`), and
* the **server correlation** — the ``/metrics`` + ``/stats`` scrape
  deltas from :mod:`repro.loadgen.scrape`, so the same document that
  says "p95 broke the target" also says what the server was doing
  (in-flight peak, server-side service time, cache and solve-memo
  traffic).

Client-side latency is measured from the *scheduled* arrival time, so it
includes every queue the request crossed — the client pool's and the
server's.  ``queueing_seconds`` in the server section is the mean gap
between that client-observed latency and the server's own per-request
service time, the black-box/white-box join in one number.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .slo import SloEvaluation

__all__ = ["LoadReport"]


@dataclass(frozen=True)
class LoadReport:
    """Everything one load run measured, JSON round-trippable.

    Attributes:
        name: the schedule's name (shape or ``trace:<name>``).
        url: the served advisor the run drove.
        seed: schedule seed (same seed = same arrival schedule).
        scheduled_requests: arrivals in the schedule.
        completed: requests that produced any response (or failed).
        errors: non-200 responses plus transport failures/timeouts.
        error_rate: ``errors / completed`` (0.0 when nothing completed).
        duration_seconds: the scheduled horizon.
        elapsed_seconds: wall clock from first scheduled arrival to last
            completion.
        offered_rate_rps: scheduled arrivals per scheduled second.
        achieved_throughput_rps: successful responses per elapsed second.
        latency: client-observed latency summary —
            ``mean/p50/p95/p99/max`` seconds, measured from scheduled
            arrival time.
        send_delay: dispatch-delay summary (actual send minus scheduled
            time) — open-loop fidelity; grows when the client pool
            itself saturates.
        per_endpoint: request/error counts and latency quantiles per
            logical endpoint.
        statuses: completed-request counts by status label.
        workers: client worker-thread count.
        slo: the SLO evaluation, when a spec was given.
        server: the white-box correlation (before/after ``/stats``,
            scrape deltas, in-flight peak), when scraping was on.
    """

    name: str
    url: str
    seed: int
    scheduled_requests: int
    completed: int
    errors: int
    error_rate: float
    duration_seconds: float
    elapsed_seconds: float
    offered_rate_rps: float
    achieved_throughput_rps: float
    latency: Dict[str, Optional[float]]
    send_delay: Dict[str, Optional[float]]
    per_endpoint: Dict[str, Dict[str, Any]]
    statuses: Dict[str, int]
    workers: int
    slo: Optional[SloEvaluation] = None
    server: Optional[Dict[str, Any]] = field(default=None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """Whether the run met its SLO (vacuously true without one)."""
        return self.slo.ok if self.slo is not None else True

    @property
    def successes(self) -> int:
        """Requests answered 200."""
        return self.completed - self.errors

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The report as a JSON-safe dictionary (round-trips via from_dict)."""
        return {
            "name": self.name,
            "url": self.url,
            "seed": self.seed,
            "scheduled_requests": self.scheduled_requests,
            "completed": self.completed,
            "errors": self.errors,
            "error_rate": self.error_rate,
            "duration_seconds": self.duration_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "offered_rate_rps": self.offered_rate_rps,
            "achieved_throughput_rps": self.achieved_throughput_rps,
            "latency": dict(self.latency),
            "send_delay": dict(self.send_delay),
            "per_endpoint": {
                endpoint: dict(summary)
                for endpoint, summary in self.per_endpoint.items()
            },
            "statuses": dict(self.statuses),
            "workers": self.workers,
            "slo": self.slo.to_dict() if self.slo is not None else None,
            "server": self.server,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LoadReport":
        """Rebuild a load report from its dictionary form."""
        slo = data.get("slo")
        return cls(
            name=data["name"],
            url=data["url"],
            seed=data["seed"],
            scheduled_requests=data["scheduled_requests"],
            completed=data["completed"],
            errors=data["errors"],
            error_rate=data["error_rate"],
            duration_seconds=data["duration_seconds"],
            elapsed_seconds=data["elapsed_seconds"],
            offered_rate_rps=data["offered_rate_rps"],
            achieved_throughput_rps=data["achieved_throughput_rps"],
            latency=dict(data["latency"]),
            send_delay=dict(data["send_delay"]),
            per_endpoint={
                endpoint: dict(summary)
                for endpoint, summary in data["per_endpoint"].items()
            },
            statuses=dict(data["statuses"]),
            workers=data["workers"],
            slo=SloEvaluation.from_dict(slo) if slo is not None else None,
            server=data.get("server"),
        )

    @classmethod
    def from_json(cls, document: Union[str, bytes]) -> "LoadReport":
        """Rebuild a load report from a JSON document."""
        return cls.from_dict(json.loads(document))
