"""Saturation sweeps: step the offered load until the SLO breaks.

A single load run answers "does the service hold at rate R"; a sizing
decision needs "what is the largest R it holds at".  :func:`saturation_sweep`
answers it empirically: run the same shape at a geometrically growing
offered rate, evaluate the SLO after each step, and stop at the first
breach.  The result is a :class:`SaturationReport` carrying every step's
full :class:`~repro.loadgen.report.LoadReport` — so the breaking step's
client p95 sits next to the server-side scrape that explains it — plus
the two numbers the sizing question wants:

* ``max_sustainable_rps`` — the achieved throughput of the last step
  that met the SLO (the service's capacity under this SLO, this
  workload mix, this deployment), and
* ``breaking_rate_rps`` — the first offered rate that broke it.

Determinism: step ``i`` uses seed ``base_seed + i``, so a sweep under a
fixed ``--seed`` schedules the same arrivals every time and the reported
saturation point is reproducible run to run (up to genuine performance
variance of the machine under test, which is the thing being measured).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import LoadGenError
from ..telemetry.trace import get_tracer
from .client import DEFAULT_WORKERS, LoadRunner, RequestTemplate
from .report import LoadReport
from .schedule import ArrivalSpec
from .slo import SloSpec

__all__ = ["SaturationReport", "saturation_sweep", "DEFAULT_SWEEP_SLO"]

#: The sweep's default bar when the caller states no SLO: half-second
#: client p95 and no errors — loose enough for the toy advisor, strict
#: enough that real saturation (queue growth, timeouts) breaks it.
DEFAULT_SWEEP_SLO = SloSpec(p95_seconds=0.5, max_error_rate=0.0)


@dataclass(frozen=True)
class SaturationReport:
    """Every step of one sweep plus the sizing verdict, JSON round-trippable.

    Attributes:
        url: the served advisor swept.
        slo: the objectives each step was held to.
        seed: the sweep's base seed (step ``i`` ran under ``seed + i``).
        steps: each step's full load report, in offered-rate order.
        saturated: whether the sweep found a breaking step (``False``
            means every step passed and the service's capacity is at
            least the last offered rate).
        max_sustainable_rps: achieved throughput of the last passing
            step (``None`` when even the first step broke).
        breaking_rate_rps: offered rate of the first failing step
            (``None`` when no step failed).
    """

    url: str
    slo: SloSpec
    seed: int
    steps: Tuple[LoadReport, ...]
    saturated: bool
    max_sustainable_rps: Optional[float]
    breaking_rate_rps: Optional[float]

    @property
    def breaking_step(self) -> Optional[LoadReport]:
        """The first step that broke the SLO, when one did."""
        if not self.saturated:
            return None
        return self.steps[-1]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The report as a JSON-safe dictionary (round-trips via from_dict)."""
        return {
            "url": self.url,
            "slo": self.slo.to_dict(),
            "seed": self.seed,
            "saturated": self.saturated,
            "max_sustainable_rps": self.max_sustainable_rps,
            "breaking_rate_rps": self.breaking_rate_rps,
            "steps": [step.to_dict() for step in self.steps],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SaturationReport":
        """Rebuild a saturation report from its dictionary form."""
        return cls(
            url=data["url"],
            slo=SloSpec.from_dict(data["slo"]),
            seed=data["seed"],
            steps=tuple(
                LoadReport.from_dict(step) for step in data["steps"]
            ),
            saturated=data["saturated"],
            max_sustainable_rps=data.get("max_sustainable_rps"),
            breaking_rate_rps=data.get("breaking_rate_rps"),
        )

    @classmethod
    def from_json(cls, document: Union[str, bytes]) -> "SaturationReport":
        """Rebuild a saturation report from a JSON document."""
        return cls.from_dict(json.loads(document))


def saturation_sweep(
    url: str,
    templates: Sequence[RequestTemplate],
    slo: Optional[SloSpec] = None,
    start_rate: float = 2.0,
    growth: float = 2.0,
    max_steps: int = 6,
    step_duration_seconds: float = 3.0,
    shape: str = "constant",
    seed: int = 0,
    workers: int = DEFAULT_WORKERS,
    timeout_seconds: float = 30.0,
    scrape: bool = True,
) -> SaturationReport:
    """Step offered load geometrically until the SLO breaks (or steps run out).

    Args:
        url: base URL of a live server.
        templates: request mix, round-robin per step (same as
            :class:`~repro.loadgen.client.LoadRunner`).
        slo: objectives each step must meet; defaults to
            :data:`DEFAULT_SWEEP_SLO`.  An empty spec is rejected — a
            sweep with nothing to breach cannot terminate meaningfully.
        start_rate: first step's offered rate, requests/second.
        growth: multiplicative rate step (> 1).
        max_steps: sweep budget; the sweep reports ``saturated=False``
            when every step passes.
        step_duration_seconds: horizon of each step's schedule.
        shape: arrival shape for every step (``constant`` by default;
            ``poisson`` measures the same capacity under bursty
            arrivals).
        seed: base seed; step ``i`` runs under ``seed + i``.
        workers / timeout_seconds / scrape: forwarded to each step's
            :class:`~repro.loadgen.client.LoadRunner`.
    """
    spec = slo if slo is not None else DEFAULT_SWEEP_SLO
    if spec.empty:
        raise LoadGenError(
            "a saturation sweep needs at least one SLO objective to probe"
        )
    if start_rate <= 0:
        raise LoadGenError(f"start_rate must be positive, got {start_rate}")
    if growth <= 1.0:
        raise LoadGenError(f"growth must be > 1, got {growth}")
    if max_steps < 1:
        raise LoadGenError(f"max_steps must be >= 1, got {max_steps}")

    steps: List[LoadReport] = []
    saturated = False
    max_sustainable: Optional[float] = None
    breaking_rate: Optional[float] = None
    with get_tracer().span(
        "loadgen.sweep", url=url, start_rate=start_rate, max_steps=max_steps
    ):
        rate = start_rate
        for index in range(max_steps):
            schedule = ArrivalSpec(
                shape=shape,
                rate=rate,
                duration_seconds=step_duration_seconds,
                seed=seed + index,
            ).schedule()
            report = LoadRunner(
                url,
                schedule,
                templates,
                slo=spec,
                workers=workers,
                timeout_seconds=timeout_seconds,
                scrape=scrape,
            ).run()
            steps.append(report)
            if not report.ok:
                saturated = True
                breaking_rate = report.offered_rate_rps
                break
            max_sustainable = report.achieved_throughput_rps
            rate *= growth
    return SaturationReport(
        url=url,
        slo=spec,
        seed=seed,
        steps=tuple(steps),
        saturated=saturated,
        max_sustainable_rps=max_sustainable,
        breaking_rate_rps=breaking_rate,
    )
