"""The open-loop HTTP load runner: fire on schedule, measure everything.

:class:`LoadRunner` drives a live ``python -m repro serve`` process with
an :class:`~repro.loadgen.schedule.ArrivalSchedule`: a dispatcher walks
the arrivals in time order, sleeps until each is due, and hands it to a
bounded thread pool — the :mod:`repro.parallel` thread-backend idiom
(stdlib ``ThreadPoolExecutor``, width = ``workers``) applied to HTTP
requests instead of solver tasks.  Dispatch never waits for completions:
if the server (or the pool) falls behind, requests queue, and the
queueing shows up as latency — measured from the request's *scheduled*
time — instead of silently lowering the offered load.

Each completed request is recorded twice:

* into the process-wide instruments
  (:data:`~repro.telemetry.instruments.LOADGEN_REQUESTS_TOTAL` /
  :data:`~repro.telemetry.instruments.LOADGEN_LATENCY`, labeled by
  endpoint and status), so a scrape of the *client* process sees its
  offered traffic; and
* into a per-run private
  :class:`~repro.telemetry.metrics.MetricsRegistry`, whose histograms —
  via :meth:`~repro.telemetry.metrics.Histogram.quantile` — are what the
  :class:`~repro.loadgen.report.LoadReport` summarizes.  A private
  registry per run is what lets a saturation sweep report each step's
  quantiles instead of a lifetime blur.

While the run is in flight, a sampler thread polls the server's
``/stats`` at a low rate and keeps the in-flight peak — the gauge that
correlates a breaking client p95 with server-side queue growth.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import LoadGenError
from ..telemetry.instruments import LOADGEN_LATENCY, LOADGEN_REQUESTS_TOTAL
from ..telemetry.metrics import LATENCY_BUCKETS, MetricsRegistry
from ..telemetry.trace import get_tracer
from .report import LoadReport
from .schedule import ArrivalSchedule
from .scrape import scrape_delta, scrape_server
from .slo import SloSpec, evaluate_slo

__all__ = ["RequestTemplate", "LoadRunner", "LOADGEN_BUCKETS"]

#: The POST endpoints a template may target.
_ENDPOINTS = ("recommend", "fleet", "replay")

#: Client-side latency buckets: the shared solve/request layout extended
#: upward — a saturated open-loop run sees queueing delays well past the
#: 10 s the server-side instruments top out at.
LOADGEN_BUCKETS: Tuple[float, ...] = (*LATENCY_BUCKETS, 30.0, 60.0, 120.0)

#: Default client pool width.
DEFAULT_WORKERS = 8

#: How often the in-flight sampler polls ``/stats`` during a run.
_SAMPLE_INTERVAL_SECONDS = 0.2


@dataclass(frozen=True)
class RequestTemplate:
    """One reusable request body: endpoint plus its JSON document.

    The document is serialized once at construction; every arrival
    assigned to the template POSTs the same bytes (which is also what
    makes repeats hit the server's value-keyed caches — the warm path a
    load test of the *serving tier* should measure).
    """

    endpoint: str
    document: Mapping[str, Any]

    def __post_init__(self) -> None:
        if self.endpoint not in _ENDPOINTS:
            raise LoadGenError(
                f"unknown endpoint {self.endpoint!r}; expected one of "
                f"{', '.join(_ENDPOINTS)}"
            )
        object.__setattr__(
            self, "_body", json.dumps(dict(self.document)).encode("utf-8")
        )

    @property
    def body(self) -> bytes:
        """The serialized POST body."""
        return self._body  # type: ignore[attr-defined]


@dataclass(frozen=True)
class _Outcome:
    """One fired request's measurements."""

    endpoint: str
    status: str
    latency_seconds: float
    send_delay_seconds: float


class _InFlightSampler:
    """Polls ``/stats`` during a run, keeping the in-flight peak."""

    def __init__(self, url: str, timeout: float) -> None:
        self._url = url.rstrip("/") + "/stats"
        self._timeout = timeout
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._poll, name="repro-loadgen-sampler", daemon=True
        )
        self.peak = 0
        self.samples = 0

    def _poll(self) -> None:
        while not self._stop.is_set():
            try:
                with urllib.request.urlopen(
                    self._url, timeout=self._timeout
                ) as response:
                    stats = json.loads(response.read())
                self.peak = max(self.peak, int(stats.get("in_flight", 0)))
                self.samples += 1
            except Exception:  # noqa: BLE001 — sampling must never kill a run
                pass
            self._stop.wait(_SAMPLE_INTERVAL_SECONDS)

    def __enter__(self) -> "_InFlightSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


class LoadRunner:
    """Drives one schedule against one served advisor and reports SLIs.

    Args:
        url: base URL of a live server (``http://host:port``).
        schedule: the arrival schedule to realize.
        templates: request templates; arrivals are assigned round-robin
            in schedule order, so the mix is deterministic.
        slo: optional :class:`~repro.loadgen.slo.SloSpec` to evaluate
            against the run's measured SLIs.
        workers: client pool width (bounded concurrency; dispatch beyond
            it queues and the queueing is measured, not hidden).
        timeout_seconds: per-request socket timeout; a timeout counts as
            an error.
        scrape: whether to take ``/metrics`` + ``/stats`` scrapes around
            (and sample ``/stats`` during) the run for the report's
            server-correlation section.
    """

    def __init__(
        self,
        url: str,
        schedule: ArrivalSchedule,
        templates: Sequence[RequestTemplate],
        slo: Optional[SloSpec] = None,
        workers: int = DEFAULT_WORKERS,
        timeout_seconds: float = 30.0,
        scrape: bool = True,
    ) -> None:
        if not templates:
            raise LoadGenError("a load run needs at least one request template")
        if workers < 1:
            raise LoadGenError(f"workers must be >= 1, got {workers}")
        if timeout_seconds <= 0:
            raise LoadGenError(
                f"timeout_seconds must be positive, got {timeout_seconds}"
            )
        self.url = url.rstrip("/")
        self.schedule = schedule
        self.templates = tuple(templates)
        self.slo = slo
        self.workers = workers
        self.timeout_seconds = timeout_seconds
        self.scrape = scrape

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _fire(self, template: RequestTemplate, due: float) -> _Outcome:
        sent = time.perf_counter()
        request = urllib.request.Request(
            f"{self.url}/{template.endpoint}",
            data=template.body,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_seconds
            ) as response:
                response.read()
                status = str(response.status)
        except urllib.error.HTTPError as error:
            error.read()
            status = str(error.code)
        except Exception:  # noqa: BLE001 — transport failures are data here
            status = "error"
        done = time.perf_counter()
        return _Outcome(
            endpoint=template.endpoint,
            status=status,
            latency_seconds=done - due,
            send_delay_seconds=max(0.0, sent - due),
        )

    def run(self) -> LoadReport:
        """Realize the schedule and return the measured report."""
        before = scrape_server(self.url, self.timeout_seconds) if self.scrape else None
        with get_tracer().span(
            "loadgen.run",
            schedule=self.schedule.name,
            requests=self.schedule.n_arrivals,
            workers=self.workers,
        ):
            if self.scrape:
                with _InFlightSampler(self.url, self.timeout_seconds) as sampler:
                    outcomes, elapsed = self._dispatch()
                in_flight = {"peak": sampler.peak, "samples": sampler.samples}
            else:
                outcomes, elapsed = self._dispatch()
                in_flight = None
        after = scrape_server(self.url, self.timeout_seconds) if self.scrape else None
        return self._report(outcomes, elapsed, before, after, in_flight)

    def _dispatch(self) -> Tuple[List[_Outcome], float]:
        """Fire every arrival at its scheduled time; never wait to send."""
        # A short lead keeps the first arrival from starting late while
        # the pool spins up.
        start = time.perf_counter() + 0.02
        futures = []
        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-loadgen"
        ) as pool:
            for index, arrival in enumerate(self.schedule.arrivals):
                template = self.templates[index % len(self.templates)]
                due = start + arrival.time_seconds
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(pool.submit(self._fire, template, due))
            outcomes = [future.result() for future in futures]
        return outcomes, time.perf_counter() - start

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(
        self,
        outcomes: List[_Outcome],
        elapsed: float,
        before: Optional[Any],
        after: Optional[Any],
        in_flight: Optional[Dict[str, int]],
    ) -> LoadReport:
        registry = MetricsRegistry()
        latency = registry.histogram(
            "loadgen_request_latency_seconds",
            "Client latency from scheduled arrival to response.",
            buckets=LOADGEN_BUCKETS,
            labelnames=("endpoint",),
        )
        delays = registry.histogram(
            "loadgen_send_delay_seconds",
            "Dispatch delay past the scheduled arrival time.",
            buckets=LOADGEN_BUCKETS,
        )
        overall = registry.histogram(
            "loadgen_latency_overall_seconds",
            "Client latency across all endpoints.",
            buckets=LOADGEN_BUCKETS,
        )
        statuses: Dict[str, int] = {}
        per_endpoint: Dict[str, Dict[str, Any]] = {}
        errors = 0
        max_latency = 0.0
        max_delay = 0.0
        for outcome in outcomes:
            ok = outcome.status == "200"
            errors += 0 if ok else 1
            statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
            summary = per_endpoint.setdefault(
                outcome.endpoint, {"requests": 0, "errors": 0}
            )
            summary["requests"] += 1
            summary["errors"] += 0 if ok else 1
            latency.labels(endpoint=outcome.endpoint).observe(
                outcome.latency_seconds
            )
            overall.observe(outcome.latency_seconds)
            delays.observe(outcome.send_delay_seconds)
            max_latency = max(max_latency, outcome.latency_seconds)
            max_delay = max(max_delay, outcome.send_delay_seconds)
            # The process-wide instruments see the same traffic.
            LOADGEN_REQUESTS_TOTAL.labels(
                endpoint=outcome.endpoint, status=outcome.status
            ).inc()
            LOADGEN_LATENCY.labels(
                endpoint=outcome.endpoint, status=outcome.status
            ).observe(outcome.latency_seconds)

        completed = len(outcomes)
        error_rate = errors / completed if completed else 0.0
        achieved = (completed - errors) / elapsed if elapsed > 0 else 0.0
        quantiles = {
            "p50": overall.quantile(0.50),
            "p95": overall.quantile(0.95),
            "p99": overall.quantile(0.99),
        }
        for endpoint, summary in per_endpoint.items():
            child = latency.labels(endpoint=endpoint)
            summary.update(
                mean_seconds=(
                    child.sum / child.count if child.count else None
                ),
                p50_seconds=child.quantile(0.50),
                p95_seconds=child.quantile(0.95),
                p99_seconds=child.quantile(0.99),
            )

        evaluation = (
            evaluate_slo(
                self.slo,
                quantiles=quantiles,
                error_rate=error_rate if completed else None,
                throughput_rps=achieved,
            )
            if self.slo is not None
            else None
        )
        server: Optional[Dict[str, Any]] = None
        if before is not None and after is not None:
            delta = scrape_delta(before, after)
            client_mean = overall.sum / overall.count if overall.count else None
            server_means = [
                window["mean_seconds"]
                for window in delta["request_latency"].values()
            ]
            server_mean = (
                sum(server_means) / len(server_means) if server_means else None
            )
            server = {
                "before_stats": before.stats,
                "after_stats": after.stats,
                "delta": delta,
                "in_flight": in_flight,
                "queueing_seconds": (
                    max(0.0, client_mean - server_mean)
                    if client_mean is not None and server_mean is not None
                    else None
                ),
            }
        return LoadReport(
            name=self.schedule.name,
            url=self.url,
            seed=self.schedule.seed,
            scheduled_requests=self.schedule.n_arrivals,
            completed=completed,
            errors=errors,
            error_rate=error_rate,
            duration_seconds=self.schedule.duration_seconds,
            elapsed_seconds=elapsed,
            offered_rate_rps=self.schedule.offered_rate,
            achieved_throughput_rps=achieved,
            latency={
                "mean_seconds": (
                    overall.sum / overall.count if overall.count else None
                ),
                "p50_seconds": quantiles["p50"],
                "p95_seconds": quantiles["p95"],
                "p99_seconds": quantiles["p99"],
                "max_seconds": max_latency if completed else None,
            },
            send_delay={
                "mean_seconds": (
                    delays.sum / delays.count if delays.count else None
                ),
                "p95_seconds": delays.quantile(0.95),
                "max_seconds": max_delay if completed else None,
            },
            per_endpoint=per_endpoint,
            statuses=statuses,
            workers=self.workers,
            slo=evaluation,
            server=server,
        )
