"""Open-loop arrival schedules: *when* requests fire, decided up front.

A closed-loop load generator (fire, wait for the answer, fire again)
measures a system that is never allowed to queue — each in-flight
request throttles the next, so saturation shows up as *lower offered
load* instead of higher latency.  The serving tier's interesting regime
is exactly the one closed loops hide: requests keep arriving whether or
not earlier ones finished.  This module therefore separates *arrival*
from *execution*: a schedule is computed deterministically up front
(seeded, JSON-describable), and the runner in :mod:`repro.loadgen.client`
fires each request at its scheduled time regardless of completions —
queueing delay becomes an observable instead of a back-pressure artifact.

Two sources produce a schedule:

* :class:`ArrivalSpec` — a declarative offered-load shape: ``constant``
  (evenly spaced), ``poisson`` (seeded exponential inter-arrivals — the
  memoryless open-workload baseline), or ``ramp`` (linearly growing rate,
  realized by thinning an upper-bounding Poisson process).
* :func:`schedule_from_trace` — a :class:`~repro.traces.WorkloadTrace`
  replayed as arrivals: each tenant's effective per-period statement
  frequencies become that many labeled requests inside the period
  (seeded-uniform placement), optionally time-compressed so an
  1800-second monitoring period can be driven in seconds.

Everything is deterministic under its seed: the same spec or trace plus
the same seed is the same schedule, arrival for arrival — which is what
makes a saturation sweep's steps comparable and a breaking point
reproducible.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..exceptions import ConfigurationError
from ..traces.model import WorkloadTrace

__all__ = [
    "Arrival",
    "ArrivalSpec",
    "ArrivalSchedule",
    "SHAPES",
    "schedule_from_spec",
    "schedule_from_trace",
]

#: Offered-load shapes an :class:`ArrivalSpec` can take.
SHAPE_CONSTANT = "constant"
SHAPE_POISSON = "poisson"
SHAPE_RAMP = "ramp"
SHAPES = (SHAPE_CONSTANT, SHAPE_POISSON, SHAPE_RAMP)


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: a time, optionally labeled with its origin.

    Attributes:
        time_seconds: offset from the start of the run at which the
            request fires.
        tenant / statement: the traced tenant and statement this arrival
            realizes (trace-derived schedules only; ``None`` for
            spec-derived ones).
    """

    time_seconds: float
    tenant: Optional[str] = None
    statement: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The arrival as a JSON-safe record (an arrival-log line)."""
        record: Dict[str, Any] = {"time_seconds": self.time_seconds}
        if self.tenant is not None:
            record["tenant"] = self.tenant
        if self.statement is not None:
            record["statement"] = self.statement
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Arrival":
        """Rebuild an arrival from its record form."""
        return cls(
            time_seconds=float(data["time_seconds"]),
            tenant=data.get("tenant"),
            statement=data.get("statement"),
        )


@dataclass(frozen=True)
class ArrivalSpec:
    """A declarative offered-load shape, JSON round-trippable.

    Attributes:
        shape: ``"constant"``, ``"poisson"``, or ``"ramp"``.
        rate: offered load in requests/second (the starting rate for a
            ramp).
        duration_seconds: length of the run.
        end_rate: the ramp's final rate (ignored by other shapes;
            defaults to ``rate``).
        seed: RNG seed for the stochastic shapes; constant spacing does
            not consume randomness but the seed is still recorded as
            provenance.
    """

    shape: str = SHAPE_CONSTANT
    rate: float = 10.0
    duration_seconds: float = 10.0
    end_rate: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ConfigurationError(
                f"unknown arrival shape {self.shape!r}; expected one of "
                f"{', '.join(SHAPES)}"
            )
        if self.rate <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {self.rate}"
            )
        if self.duration_seconds <= 0:
            raise ConfigurationError(
                f"duration_seconds must be positive, got {self.duration_seconds}"
            )
        if self.end_rate is not None and self.end_rate <= 0:
            raise ConfigurationError(
                f"end_rate must be positive, got {self.end_rate}"
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalSpec":
        """Build a spec from a plain dictionary."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown arrival-spec option(s) {', '.join(map(repr, unknown))}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        return cls(
            shape=data.get("shape", SHAPE_CONSTANT),
            rate=data.get("rate", 10.0),
            duration_seconds=data.get("duration_seconds", 10.0),
            end_rate=data.get("end_rate"),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, document: Union[str, bytes]) -> "ArrivalSpec":
        """Build a spec from a JSON document."""
        return cls.from_dict(json.loads(document))

    def to_dict(self) -> Dict[str, Any]:
        """The spec as a JSON-safe dictionary (round-trips via from_dict)."""
        return {
            "shape": self.shape,
            "rate": self.rate,
            "duration_seconds": self.duration_seconds,
            "end_rate": self.end_rate,
            "seed": self.seed,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def schedule(self) -> "ArrivalSchedule":
        """The deterministic schedule this spec describes."""
        return schedule_from_spec(self)


@dataclass(frozen=True)
class ArrivalSchedule:
    """A fully materialized request schedule: sorted, seeded, inspectable.

    Attributes:
        name: where the schedule came from (``"constant"``,
            ``"trace:diurnal"``, ...), provenance for reports.
        arrivals: every scheduled request in non-decreasing time order.
        duration_seconds: the scheduled horizon (arrivals all fall in
            ``[0, duration_seconds)``).
        seed: the seed that produced it.
    """

    name: str
    arrivals: Tuple[Arrival, ...]
    duration_seconds: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ConfigurationError(
                f"duration_seconds must be positive, got {self.duration_seconds}"
            )
        arrivals = tuple(
            arrival if isinstance(arrival, Arrival) else Arrival.from_dict(arrival)
            for arrival in self.arrivals
        )
        for earlier, later in zip(arrivals, arrivals[1:]):
            if later.time_seconds < earlier.time_seconds:
                raise ConfigurationError(
                    f"arrivals must be in non-decreasing time order "
                    f"(got {later.time_seconds} after {earlier.time_seconds})"
                )
        for arrival in arrivals:
            if not 0.0 <= arrival.time_seconds < self.duration_seconds:
                raise ConfigurationError(
                    f"arrival at {arrival.time_seconds}s falls outside "
                    f"[0, {self.duration_seconds})"
                )
        object.__setattr__(self, "arrivals", arrivals)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_arrivals(self) -> int:
        """Number of scheduled requests."""
        return len(self.arrivals)

    @property
    def offered_rate(self) -> float:
        """Average offered load over the horizon, requests/second."""
        return self.n_arrivals / self.duration_seconds

    def per_period_counts(self, period_seconds: float) -> List[int]:
        """Realized request counts per ``period_seconds``-long period."""
        if period_seconds <= 0:
            raise ConfigurationError(
                f"period_seconds must be positive, got {period_seconds}"
            )
        n_periods = max(1, math.ceil(self.duration_seconds / period_seconds))
        counts = [0] * n_periods
        for arrival in self.arrivals:
            counts[min(n_periods - 1, int(arrival.time_seconds // period_seconds))] += 1
        return counts

    def to_records(self) -> List[Dict[str, Any]]:
        """The schedule as arrival-log records (one dict per request).

        The inverse direction of
        :func:`repro.traces.from_arrival_log`: rendering a trace to a
        schedule and importing the records back recovers the trace's
        per-period statement frequencies.
        """
        return [arrival.to_dict() for arrival in self.arrivals]


def schedule_from_spec(spec: ArrivalSpec) -> ArrivalSchedule:
    """Materialize an :class:`ArrivalSpec` into a deterministic schedule."""
    duration = spec.duration_seconds
    times: List[float]
    if spec.shape == SHAPE_CONSTANT:
        count = max(1, int(round(spec.rate * duration)))
        times = [index * duration / count for index in range(count)]
    elif spec.shape == SHAPE_POISSON:
        rng = random.Random(spec.seed)
        times = []
        now = 0.0
        while True:
            now += rng.expovariate(spec.rate)
            if now >= duration:
                break
            times.append(now)
    else:  # ramp: thinning against the peak rate
        end_rate = spec.end_rate if spec.end_rate is not None else spec.rate
        peak = max(spec.rate, end_rate)
        rng = random.Random(spec.seed)
        times = []
        now = 0.0
        while True:
            now += rng.expovariate(peak)
            if now >= duration:
                break
            rate_now = spec.rate + (end_rate - spec.rate) * (now / duration)
            if rng.random() * peak <= rate_now:
                times.append(now)
    return ArrivalSchedule(
        name=spec.shape,
        arrivals=tuple(Arrival(time_seconds=time) for time in times),
        duration_seconds=duration,
        seed=spec.seed,
    )


def schedule_from_trace(
    trace: WorkloadTrace,
    seed: int = 0,
    requests_per_intensity: float = 1.0,
    period_duration_seconds: Optional[float] = None,
) -> ArrivalSchedule:
    """Replay a :class:`~repro.traces.WorkloadTrace` as an open arrival process.

    For every monitoring period, every tenant's *effective* statement mix
    (base spec scaled by the events in force) is turned into labeled
    arrivals: statement ``s`` with frequency ``f`` contributes
    ``round(f * requests_per_intensity)`` requests, placed seeded-uniform
    inside the period.  Realized per-period counts therefore match the
    trace's intensities exactly up to rounding — the property the
    scheduler tests pin down — while *placement* within a period stays
    random (open-workload burstiness rather than a metronome).

    ``period_duration_seconds`` time-compresses the replay: a trace with
    1800-second monitoring periods can be driven at, say, one second per
    period without changing any per-period count (so the offered *rate*
    scales up by the compression factor).  The default keeps the trace's
    own period length.
    """
    if requests_per_intensity <= 0:
        raise ConfigurationError(
            f"requests_per_intensity must be positive, "
            f"got {requests_per_intensity}"
        )
    period_wall = (
        float(period_duration_seconds)
        if period_duration_seconds is not None
        else trace.period_seconds
    )
    if period_wall <= 0:
        raise ConfigurationError(
            f"period_duration_seconds must be positive, got {period_wall}"
        )
    rng = random.Random(seed)
    arrivals: List[Arrival] = []
    for period, specs in trace.periods():
        start = (period - 1) * period_wall
        for spec in specs:
            for statement, frequency in spec.statements:
                count = int(round(frequency * requests_per_intensity))
                for _ in range(count):
                    arrivals.append(
                        Arrival(
                            time_seconds=start + rng.random() * period_wall,
                            tenant=spec.name,
                            statement=statement,
                        )
                    )
    arrivals.sort(key=lambda arrival: arrival.time_seconds)
    return ArrivalSchedule(
        name=f"trace:{trace.name}",
        arrivals=tuple(arrivals),
        duration_seconds=trace.n_periods * period_wall,
        seed=seed,
    )
