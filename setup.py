"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that the package can also be installed in environments whose tooling cannot
build PEP 660 editable wheels (e.g. offline machines without the ``wheel``
package), via ``python setup.py develop`` or ``pip install -e .`` in
compatibility mode.
"""

from setuptools import setup

setup()
