"""Fleet consolidation: place 12 tenants across 4 machines, then divide.

The paper's advisor divides **one** machine among its tenants.  This
example runs the layer above it: a :class:`~repro.fleet.FleetAdvisor`
decides which of four machines (one pool of paper-testbed hosts plus a
double-capacity outlier) each of twelve mixed PostgreSQL / DB2 tenants
lands on, using the ``"greedy-cost"`` strategy — each tenant goes where
the marginal gain-weighted cost increase is smallest — and then delegates
every machine's internal CPU/memory split to the existing per-machine
:class:`~repro.api.Advisor`.

The script also demonstrates (and checks) the three properties the fleet
engine guarantees:

1. greedy-cost placement never costs more than the round-robin baseline,
2. every machine's allocation is a genuine per-machine advisor report, and
3. a repeated fleet recommendation is answered entirely from the shared
   cost cache — zero new cost-estimator evaluations.

Run with::

    python examples/fleet_consolidation.py
"""

from repro.experiments.fleet import build_fleet_problem
from repro.fleet import FleetAdvisor


def main() -> None:
    # 12 tenants (mixed engines, intensities, and QoS gain factors) and 4
    # machines; every tenant reserves 1 GB of memory and a fifth of a
    # standard host's CPU work-rate, so machines genuinely fill up.
    fleet = build_fleet_problem(n_tenants=12, n_machines=4,
                                name="fleet-consolidation-demo")
    print(f"fleet: {fleet.n_tenants} tenants x {fleet.n_machines} machines")
    print(fleet.to_json(indent=2)[:400] + " ...")
    print()

    advisor = FleetAdvisor(placement="greedy-cost", delta=0.1)

    # Greedy-cost placement + per-machine division, in one call.
    report = advisor.recommend(fleet)
    for line in report.summary_lines():
        print(line)
    print()

    # The round-robin baseline runs over the same calibrations and shared
    # cost cache, so comparing strategies re-prices almost nothing.
    baseline = advisor.recommend(fleet, placement="round-robin")
    improvement = 1.0 - report.total_weighted_cost / baseline.total_weighted_cost
    print(f"greedy-cost weighted cost : {report.total_weighted_cost:10.1f}")
    print(f"round-robin weighted cost : {baseline.total_weighted_cost:10.1f}")
    print(f"improvement               : {improvement:10.1%}")
    assert report.total_weighted_cost <= baseline.total_weighted_cost + 1e-9, (
        "greedy-cost placement must never lose to round-robin"
    )

    # Every machine's split came from the per-machine advisor: each busy
    # machine carries a full RecommendationReport whose shares sum to 1.
    placed_tenants = 0
    for machine in report.machines:
        if machine.is_idle:
            continue
        inner = machine.report
        assert inner is not None
        assert inner.provenance.enumerator == "greedy"
        assert abs(sum(t.cpu_share for t in inner.tenants) - 1.0) < 1e-6
        placed_tenants += len(inner.tenants)
    assert placed_tenants == fleet.n_tenants
    assert report.machines_used >= 3
    print(f"machines used             : {report.machines_used}/{fleet.n_machines}")
    print()

    # Re-running the whole fleet recommendation hits the shared CostCache:
    # zero new cost-estimator evaluations.
    repeat = advisor.recommend(fleet)
    print(f"first run evaluations     : {report.cost_stats.evaluations:7d}")
    print(f"repeat evaluations        : {repeat.cost_stats.evaluations:7d} "
          f"(cache hits {repeat.cost_stats.cache_hits})")
    assert repeat.cost_stats.evaluations == 0
    assert repeat.placement == report.placement
    print()

    # The two-level answer serializes (and round-trips) for the fleet
    # controller that has to apply it.
    document = report.to_json()
    from repro.fleet import FleetReport

    restored = FleetReport.from_json(document)
    assert restored.to_dict() == report.to_dict()
    print(f"serialized fleet report   : {len(document)} bytes "
          f"(round-trips via FleetReport.from_json)")


if __name__ == "__main__":
    main()
