"""Dynamic configuration management: reacting to workload changes at run time.

Two DB2 virtual machines share a physical server: one serves a reporting
(TPC-H style) workload, the other an order-entry (TPC-C style) workload.
Every 30-minute monitoring period the reporting workload grows a little; in
period 3 the two workloads switch virtual machines (for example, because an
application was migrated).

The dynamic configuration manager of Section 6 classifies each change as
minor or major by watching the average estimated cost per query.  Minor
changes keep refining the existing cost models; major changes discard them
and restart from the optimizer's estimates, which lets the advisor restore a
good allocation within a single monitoring period.

The base problem comes from a :class:`~repro.api.ProblemBuilder`; the
manager itself is created through the :class:`~repro.api.Advisor` service.

Run with::

    python examples/dynamic_reallocation.py
"""

from repro import Advisor, CalibrationSettings, ProblemBuilder
from repro.core import ConsolidatedWorkload
from repro.workloads.generator import tpcc_workload
from repro.workloads.units import compose_workload, cpu_intensive_unit, cpu_nonintensive_unit

N_PERIODS = 6
SWITCH_PERIOD = 3


def main() -> None:
    builder = ProblemBuilder(
        calibration_settings=CalibrationSettings(cpu_shares=(0.2, 0.4, 0.6, 0.8, 1.0))
    )
    dss_queries = builder.queries("db2", "tpch", 1.0)
    dss_calibration = builder.calibration("db2", "tpch", 1.0)
    oltp_calibration = builder.calibration("db2", "tpcc", 10)

    unit_c = cpu_intensive_unit(dss_queries, "db2")
    unit_i = cpu_nonintensive_unit(dss_queries, "db2")
    oltp_workload = tpcc_workload(
        builder.queries("db2", "tpcc", 10), "order-entry",
        warehouses_accessed=8, clients_per_warehouse=10,
    )

    def dss_tenant(period):
        units = 2.0 + period  # the reporting workload grows every period
        workload = compose_workload(
            f"reporting-p{period}", [(unit_c, units), (unit_i, units)]
        )
        return ConsolidatedWorkload(workload=workload, calibration=dss_calibration)

    def oltp_tenant():
        return ConsolidatedWorkload(workload=oltp_workload, calibration=oltp_calibration)

    base_problem = (
        builder
        .cpu_only(fixed_memory_mb=512.0)
        .add_tenant(workload=dss_tenant(0).workload, engine="db2",
                    benchmark="tpch", scale=1.0)
        .add_tenant(workload=oltp_workload, engine="db2",
                    benchmark="tpcc", scale=10)
        .build()
    )
    manager = Advisor().dynamic_manager(base_problem)
    initial = manager.initial_recommendation()
    print("Initial recommendation:",
          ", ".join(f"VM{i + 1} cpu={a.cpu_share:.0%}" for i, a in enumerate(initial)))
    print()
    print("period  VM1 serves   change        next allocation (VM1/VM2)")
    print("------  -----------  ------------  --------------------------")

    for period in range(1, N_PERIODS + 1):
        dss_on_first = period < SWITCH_PERIOD
        first = dss_tenant(period) if dss_on_first else oltp_tenant()
        second = oltp_tenant() if dss_on_first else dss_tenant(period)
        decision = manager.process_period((first, second))
        print(f"{period:>6}  {'reporting' if dss_on_first else 'order-entry':<11}  "
              f"{'/'.join(decision.change_classes):<12}  "
              f"{decision.allocations[0].cpu_share:.0%} / "
              f"{decision.allocations[1].cpu_share:.0%}")

    print()
    print("The switch in period", SWITCH_PERIOD,
          "is detected as a major change and the CPU shares follow the workloads.")


if __name__ == "__main__":
    main()
