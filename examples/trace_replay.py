"""Trace replay: shifting workloads, dynamic re-placement, and the cache.

A small fleet (four tenants, two machines) serves workloads that *shift*:
midway through the trace, each heavy tenant swaps its entire statement mix
with a light neighbour — the paper's §7.10 "workloads switch virtual
machines" move, expressed as a `tenant_swap_trace`.

The demo replays the same trace under three policies and compares them:

* ``dynamic``  — one dynamic configuration manager per machine; the swap
  is classified a *major* change, the managers discard their refined cost
  models, and the fleet advisor incrementally re-places the changed
  tenants at the period boundary;
* ``continuous`` — refinement only, never re-place (the paper's baseline);
* ``static``   — the initial placement and allocations held throughout.

It also replays the trace a second time to show the zero-evaluation
repeat property: every cost question is answered from the shared cache.

Run with::

    PYTHONPATH=src python examples/trace_replay.py
"""

from repro.fleet import FleetAdvisor, FleetProblem
from repro.traces import FleetTraceReplayer, tenant_swap_trace

TENANTS = [
    {"name": "orders-heavy", "engine": "db2",
     "statements": [["q18", 30.0], ["q21", 1.0]], "gain_factor": 2.0},
    {"name": "reports-light", "engine": "db2", "statements": [["q21", 1.0]]},
    {"name": "analytics-heavy", "engine": "postgresql",
     "statements": [["q18", 24.0]], "gain_factor": 2.0},
    {"name": "archive-light", "engine": "postgresql",
     "statements": [["q17", 1.0]]},
]

MACHINES = [
    {"name": "small-host"},
    {"name": "big-host", "cpu_work_units_per_second": 4_000_000.0,
     "memory_mb": 16384.0},
]


def main() -> None:
    fleet = FleetProblem(
        tenants=TENANTS, machines=MACHINES, resources=["cpu"],
        name="swap-demo",
    )
    trace = tenant_swap_trace(TENANTS, swap_periods=(3,), n_periods=6)
    print(f"trace {trace.name!r}: {trace.n_tenants} tenants x "
          f"{trace.n_periods} periods (mix swap at period 3)\n")

    advisor = FleetAdvisor(delta=0.1)
    reports = {
        policy: FleetTraceReplayer(
            trace, fleet, advisor=advisor, policy=policy
        ).replay()
        for policy in ("dynamic", "continuous", "static")
    }

    print("cumulative actual cost per policy:")
    for policy, report in sorted(
        reports.items(), key=lambda pair: pair[1].cumulative_actual_cost
    ):
        extra = ""
        if report.replacements:
            extra = f"  (re-placed at periods {list(report.replacements)})"
        print(f"  {policy:<11} {report.cumulative_actual_cost:12.1f}{extra}")

    dynamic = reports["dynamic"]
    print("\ndynamic policy, period by period:")
    for period in dynamic.periods:
        majors = sorted(
            name for name, change in period.change_classes.items()
            if change == "major"
        )
        note = f"  major: {', '.join(majors)}" if majors else ""
        note += "  -> re-placement" if period.replaced else ""
        print(f"  p{period.period}: actual cost {period.actual_cost:10.1f}"
              f"  improvement {period.improvement_over_default:+.1%}{note}")

    print("\nplacement before and after the swap:")
    print(f"  p1: {dynamic.periods[0].placement}")
    print(f"  p4: {dynamic.periods[3].placement}")

    repeat = FleetTraceReplayer(trace, fleet, advisor=advisor).replay()
    print(f"\nrepeated identical replay: "
          f"{repeat.cost_stats.evaluations} new cost evaluations, "
          f"{repeat.cost_stats.cache_hits} cache hits")

    document = dynamic.to_json()
    print(f"replay report serializes to {len(document)} bytes of JSON")


if __name__ == "__main__":
    main()
