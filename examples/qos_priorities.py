"""Using QoS settings: degradation limits and benefit gain factors.

Five identical CPU-bound workloads (one C unit each, as in Section 7.5 of
the paper) share a physical machine.  Without QoS settings each would simply
receive a fifth of the CPU.  This example shows how

* a *degradation limit* ``L_i`` guarantees a workload's estimated run time
  stays within a chosen factor of what it would be on a dedicated machine,
  and
* a *benefit gain factor* ``G_i`` expresses that improving one workload is
  worth more than improving the others.

Run with::

    python examples/qos_priorities.py
"""

from repro import CalibrationSettings, DB2Engine, calibrate_engine
from repro.core import (
    ConsolidatedWorkload,
    UNLIMITED_DEGRADATION,
    VirtualizationDesignAdvisor,
    VirtualizationDesignProblem,
    WhatIfCostEstimator,
)
from repro.core.problem import CPU
from repro.virt import PhysicalMachine
from repro.workloads import tpch_database, tpch_queries
from repro.workloads.units import compose_workload, cpu_intensive_unit

N_WORKLOADS = 5
FIXED_MEMORY_FRACTION = 512.0 / 8192.0


def build_problem(calibration, queries, degradation_limits, gain_factors):
    unit = cpu_intensive_unit(queries, "db2")
    tenants = []
    for index in range(N_WORKLOADS):
        workload = compose_workload(f"W{index + 9}", [(unit, 1.0)])
        tenants.append(
            ConsolidatedWorkload(
                workload=workload,
                calibration=calibration,
                degradation_limit=degradation_limits[index],
                gain_factor=gain_factors[index],
            )
        )
    return VirtualizationDesignProblem(
        tenants=tuple(tenants), resources=(CPU,),
        fixed_memory_fraction=FIXED_MEMORY_FRACTION,
    )


def report(title, problem, recommendation):
    estimator = WhatIfCostEstimator(problem)
    print(title)
    print("-" * len(title))
    for index, (name, allocation) in enumerate(
        zip(problem.tenant_names(), recommendation.allocations)
    ):
        tenant = problem.tenant(index)
        degradation = estimator.degradation(index, allocation)
        limit = ("none" if tenant.degradation_limit == UNLIMITED_DEGRADATION
                 else f"{tenant.degradation_limit:.1f}")
        print(f"  {name}: cpu={allocation.cpu_share:5.0%}  "
              f"degradation={degradation:4.1f}x (limit {limit}, "
              f"gain {tenant.gain_factor:.0f})")
    print()


def main() -> None:
    machine = PhysicalMachine()
    settings = CalibrationSettings(cpu_shares=(0.2, 0.4, 0.6, 0.8, 1.0))
    database = tpch_database(1.0)
    calibration = calibrate_engine(DB2Engine(database), machine, settings)
    queries = tpch_queries(database)
    advisor = VirtualizationDesignAdvisor()

    # 1. No QoS settings: everyone gets 1/5 of the CPU.
    plain = build_problem(calibration, queries,
                          [UNLIMITED_DEGRADATION] * N_WORKLOADS, [1.0] * N_WORKLOADS)
    report("No QoS settings", plain, advisor.recommend(plain))

    # 2. Degradation limits on the first two workloads (L9=2.5, L10=2.5):
    #    the advisor shifts CPU toward them so their estimated slow-down
    #    stays within the limit, at the cost of the other workloads.
    limited = build_problem(
        calibration, queries,
        [2.5, 2.5] + [UNLIMITED_DEGRADATION] * (N_WORKLOADS - 2),
        [1.0] * N_WORKLOADS,
    )
    report("Degradation limits L9 = L10 = 2.5", limited, advisor.recommend(limited))

    # 3. Benefit gain factors: W9 is eight times as important as the rest,
    #    W10 four times.  CPU follows the priorities.
    prioritized = build_problem(
        calibration, queries,
        [UNLIMITED_DEGRADATION] * N_WORKLOADS,
        [8.0, 4.0, 1.0, 1.0, 1.0],
    )
    report("Benefit gain factors G9 = 8, G10 = 4", prioritized,
           advisor.recommend(prioritized))


if __name__ == "__main__":
    main()
