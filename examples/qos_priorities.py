"""Using QoS settings: degradation limits and benefit gain factors.

Five identical CPU-bound workloads (one C unit each, as in Section 7.5 of
the paper) share a physical machine.  Without QoS settings each would simply
receive a fifth of the CPU.  This example shows how

* a *degradation limit* ``L_i`` guarantees a workload's estimated run time
  stays within a chosen factor of what it would be on a dedicated machine,
  and
* a *benefit gain factor* ``G_i`` expresses that improving one workload is
  worth more than improving the others.

Each variant is expressed as a declarative :class:`~repro.api.Scenario` —
plain data that could equally live in a JSON file or arrive over the wire —
and solved by the :class:`~repro.api.Advisor`; the per-tenant degradations
come straight from the :class:`~repro.api.RecommendationReport`.

Run with::

    python examples/qos_priorities.py
"""

from repro import Advisor, Scenario
from repro.workloads.units import CPU_UNIT_Q18_INSTANCES

N_WORKLOADS = 5

#: One C unit for DB2: the canonical Section 7.3 instance count of TPC-H Q18.
C_UNIT_STATEMENTS = [["q18", CPU_UNIT_Q18_INSTANCES["db2"]]]


def scenario(name, degradation_limits, gain_factors) -> Scenario:
    return Scenario.from_dict({
        "name": name,
        "resources": ["cpu"],
        "fixed_memory_fraction": 512.0 / 8192.0,
        "calibration": {"cpu_shares": [0.2, 0.4, 0.6, 0.8, 1.0]},
        "tenants": [
            {
                "name": f"W{index + 9}",
                "engine": "db2",
                "statements": C_UNIT_STATEMENTS,
                "degradation_limit": degradation_limits[index],
                "gain_factor": gain_factors[index],
            }
            for index in range(N_WORKLOADS)
        ],
    })


def report(title, recommendation_report) -> None:
    print(title)
    print("-" * len(title))
    for tenant in recommendation_report.tenants:
        limit = ("none" if tenant.degradation_limit == float("inf")
                 else f"{tenant.degradation_limit:.1f}")
        print(f"  {tenant.name}: cpu={tenant.cpu_share:5.0%}  "
              f"degradation={tenant.degradation:4.1f}x (limit {limit}, "
              f"gain {tenant.gain_factor:.0f})")
    print()


def main() -> None:
    advisor = Advisor()

    variants = [
        # 1. No QoS settings: everyone gets 1/5 of the CPU.
        ("No QoS settings",
         scenario("no-qos", [None] * N_WORKLOADS, [1.0] * N_WORKLOADS)),
        # 2. Degradation limits on the first two workloads (L9=2.5, L10=2.5):
        #    the advisor shifts CPU toward them so their estimated slow-down
        #    stays within the limit, at the cost of the other workloads.
        ("Degradation limits L9 = L10 = 2.5",
         scenario("degradation-limits",
                  [2.5, 2.5] + [None] * (N_WORKLOADS - 2),
                  [1.0] * N_WORKLOADS)),
        # 3. Benefit gain factors: W9 is eight times as important as the
        #    rest, W10 four times.  CPU follows the priorities.
        ("Benefit gain factors G9 = 8, G10 = 4",
         scenario("gain-factors",
                  [None] * N_WORKLOADS,
                  [8.0, 4.0, 1.0, 1.0, 1.0])),
    ]

    # All three variants share one machine and calibration spec, so the
    # builder is threaded through: the DB2 engine is calibrated once and
    # only the tenants (the QoS settings) change.
    builder = None
    for title, variant in variants:
        builder = variant.to_builder(builder)
        report(title, advisor.recommend(builder.build()))


if __name__ == "__main__":
    main()
