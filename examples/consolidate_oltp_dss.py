"""Consolidating OLTP and DSS databases with online refinement.

This example reproduces, at small scale, the situation behind Figures 28-31
of the paper: an order-entry (TPC-C style) database and a reporting (TPC-H
style) database are consolidated onto one physical server, each in its own
DB2 virtual machine.

The query optimizer does not model locking, logging, or update overheads, so
it underestimates how much CPU the OLTP workload really needs: the initial
recommendation starves the OLTP VM and can actually perform *worse* than
simply splitting the machine 50/50.  Online refinement observes the real
execution times, corrects the advisor's cost model, and re-allocates the CPU.

Run with::

    python examples/consolidate_oltp_dss.py
"""

from repro import CalibrationSettings, DB2Engine, calibrate_engine
from repro.core import (
    ConsolidatedWorkload,
    VirtualizationDesignAdvisor,
    VirtualizationDesignProblem,
    WhatIfCostEstimator,
)
from repro.core.cost_estimator import ActualCostFunction
from repro.core.problem import CPU
from repro.virt import PhysicalMachine
from repro.workloads import tpcc_database, tpcc_transactions, tpch_database, tpch_queries
from repro.workloads.generator import tpcc_workload
from repro.workloads.units import mixed_cpu_workload


def main() -> None:
    machine = PhysicalMachine()
    settings = CalibrationSettings(cpu_shares=(0.2, 0.4, 0.6, 0.8, 1.0))

    # One DB2 instance hosts the order-entry database, another the
    # reporting database; both are calibrated once on this machine.
    oltp_db = tpcc_database(10)
    oltp_calibration = calibrate_engine(DB2Engine(oltp_db), machine, settings)
    dss_db = tpch_database(1.0)
    dss_calibration = calibrate_engine(DB2Engine(dss_db), machine, settings)

    oltp_workload = tpcc_workload(
        tpcc_transactions(oltp_db), "order-entry",
        warehouses_accessed=10, clients_per_warehouse=10,
        transactions_per_client=2000.0,
    )
    dss_workload = mixed_cpu_workload(
        "reporting", tpch_queries(dss_db), "db2", cpu_units=4, noncpu_units=4
    )

    problem = VirtualizationDesignProblem(
        tenants=(
            ConsolidatedWorkload(workload=oltp_workload, calibration=oltp_calibration),
            ConsolidatedWorkload(workload=dss_workload, calibration=dss_calibration),
        ),
        resources=(CPU,),                    # the paper's CPU-only setting
        fixed_memory_fraction=512.0 / 8192.0,  # 512 MB per VM
    )

    advisor = VirtualizationDesignAdvisor()
    estimator = WhatIfCostEstimator(problem)
    actuals = ActualCostFunction(problem)

    initial = advisor.recommend(problem, estimator)
    initial_improvement = advisor.measured_improvement(
        problem, initial.allocations, actuals
    )
    print("Before online refinement")
    print("------------------------")
    for name, allocation in zip(problem.tenant_names(), initial.allocations):
        print(f"  {name:<14} cpu={allocation.cpu_share:5.0%}")
    print(f"  measured improvement over 50/50: {initial_improvement:+.1%}")
    print()

    refinement = advisor.refine_online(problem, actual_costs=actuals,
                                       estimator=estimator, max_iterations=5)
    refined_improvement = advisor.measured_improvement(
        problem, refinement.final_allocations, actuals
    )
    print(f"After online refinement ({refinement.iteration_count} iterations, "
          f"converged={refinement.converged})")
    print("-----------------------")
    for name, allocation in zip(problem.tenant_names(), refinement.final_allocations):
        print(f"  {name:<14} cpu={allocation.cpu_share:5.0%}")
    print(f"  measured improvement over 50/50: {refined_improvement:+.1%}")


if __name__ == "__main__":
    main()
