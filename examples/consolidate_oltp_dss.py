"""Consolidating OLTP and DSS databases with online refinement.

This example reproduces, at small scale, the situation behind Figures 28-31
of the paper: an order-entry (TPC-C style) database and a reporting (TPC-H
style) database are consolidated onto one physical server, each in its own
DB2 virtual machine.

The query optimizer does not model locking, logging, or update overheads, so
it underestimates how much CPU the OLTP workload really needs: the initial
recommendation starves the OLTP VM and can actually perform *worse* than
simply splitting the machine 50/50.  Online refinement observes the real
execution times, corrects the advisor's cost model, and re-allocates the CPU.

The :class:`~repro.api.ProblemBuilder` owns the engine/calibration plumbing;
composed workloads (built from the builder's cached query templates) are
attached with ``add_tenant(workload=...)``.  ``Advisor.refine`` dispatches to
the paper's basic refinement procedure because only CPU is controlled.

Run with::

    python examples/consolidate_oltp_dss.py
"""

from repro import Advisor, CalibrationSettings, ProblemBuilder
from repro.workloads.generator import tpcc_workload
from repro.workloads.units import mixed_cpu_workload


def main() -> None:
    builder = ProblemBuilder(
        calibration_settings=CalibrationSettings(cpu_shares=(0.2, 0.4, 0.6, 0.8, 1.0))
    )

    # One DB2 instance hosts the order-entry database, another the
    # reporting database; the builder calibrates each once on its machine.
    oltp_workload = tpcc_workload(
        builder.queries("db2", "tpcc", 10), "order-entry",
        warehouses_accessed=10, clients_per_warehouse=10,
        transactions_per_client=2000.0,
    )
    dss_workload = mixed_cpu_workload(
        "reporting", builder.queries("db2", "tpch", 1.0), "db2",
        cpu_units=4, noncpu_units=4,
    )
    problem = (
        builder
        .cpu_only(fixed_memory_mb=512.0)     # the paper's CPU-only setting
        .add_tenant(workload=oltp_workload, engine="db2", benchmark="tpcc", scale=10)
        .add_tenant(workload=dss_workload, engine="db2", benchmark="tpch", scale=1.0)
        .build()
    )

    advisor = Advisor()
    report = advisor.recommend(problem)
    initial_improvement = advisor.measured_improvement(problem, report.allocations)
    print("Before online refinement")
    print("------------------------")
    for tenant in report.tenants:
        print(f"  {tenant.name:<14} cpu={tenant.cpu_share:5.0%}")
    print(f"  measured improvement over 50/50: {initial_improvement:+.1%}")
    print()

    refinement = advisor.refine(problem, max_iterations=5)
    refined_improvement = advisor.measured_improvement(
        problem, refinement.final_allocations
    )
    print(f"After online refinement ({refinement.iteration_count} iterations, "
          f"converged={refinement.converged})")
    print("-----------------------")
    for name, allocation in zip(problem.tenant_names(), refinement.final_allocations):
        print(f"  {name:<14} cpu={allocation.cpu_share:5.0%}")
    print(f"  measured improvement over 50/50: {refined_improvement:+.1%}")


if __name__ == "__main__":
    main()
