"""Quickstart: recommend VM configurations for two consolidated DBMSes.

Builds the paper's motivating scenario in miniature — a PostgreSQL VM running
an I/O-bound TPC-H query and a DB2 VM running a CPU-bound one — with the
fluent :class:`~repro.api.ProblemBuilder` (which hides the engine /
calibration boilerplate), asks the :class:`~repro.api.Advisor` service how to
split the physical machine's CPU and memory between the two VMs, and prints
the structured :class:`~repro.api.RecommendationReport` it returns —
including its machine-readable JSON form.

Run with::

    python examples/quickstart.py
"""

from repro import Advisor, ProblemBuilder


def main() -> None:
    # One builder call per tenant: the builder creates the TPC-H databases,
    # binds the engines, calibrates them once on a default physical machine,
    # and resolves the query templates by name.
    problem = (
        ProblemBuilder()
        .add_tenant("postgresql-io-bound", engine="postgresql",
                    statements=[("q17", 1.0)])
        .add_tenant("db2-cpu-bound", engine="db2",
                    statements=[("q18", 1.0)])
        .build()
    )

    # The advisor service defaults to the paper's pipeline: greedy
    # enumeration over the calibrated what-if cost estimator.  Strategies
    # are pluggable — try Advisor(enumerator="exhaustive-dp") for the exact
    # grid optimum (a dynamic program; "exhaustive" is the brute-force
    # cross-check) or Advisor(cost_function="actual").
    advisor = Advisor()
    report = advisor.recommend(problem)

    print("Recommended virtual machine configurations")
    print("------------------------------------------")
    for tenant in report.tenants:
        print(f"  {tenant.name:<24} cpu={tenant.cpu_share:5.0%}  "
              f"memory={tenant.memory_fraction:5.0%}  "
              f"degradation={tenant.degradation:4.1f}x")
    print()
    print(f"estimated cost under default 50/50 split : {report.default_cost:8.1f} s")
    print(f"estimated cost under recommendation      : {report.total_cost:8.1f} s")
    print(f"estimated improvement                    : {report.estimated_improvement:8.1%}")
    print(f"strategy                                 : "
          f"{report.provenance.enumerator} / {report.provenance.cost_function}")
    print(f"cost evaluations (cache hits)            : "
          f"{report.cost_stats.evaluations} ({report.cost_stats.cache_hits})")

    # "Deploy" the recommendation: simulate actually running both workloads
    # inside their VMs (with the noisy-neighbour I/O VM present) and compare
    # against the default allocation.
    measured = advisor.measured_improvement(problem, report.allocations)
    print(f"measured improvement                     : {measured:8.1%}")

    # The report serializes for dashboards, services, and regression logs.
    print()
    print("Machine-readable report")
    print("-----------------------")
    print(report.to_json(indent=2))


if __name__ == "__main__":
    main()
