"""Quickstart: recommend VM configurations for two consolidated DBMSes.

Builds the paper's motivating scenario in miniature — a PostgreSQL VM running
an I/O-bound TPC-H query and a DB2 VM running a CPU-bound one — calibrates
both engines, and asks the virtualization design advisor how to split the
physical machine's CPU and memory between the two VMs.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ActualCostFunction,
    VirtualizationDesignAdvisor,
    quickstart_problem,
)


def main() -> None:
    # The quickstart problem bundles: a physical machine, two calibrated
    # engines (PostgreSQL and DB2, each hosting a 1 GB TPC-H database), and
    # one workload per engine.
    problem = quickstart_problem(scale_factor=1.0)
    advisor = VirtualizationDesignAdvisor()

    recommendation = advisor.recommend(problem)

    print("Recommended virtual machine configurations")
    print("------------------------------------------")
    for name, allocation in zip(problem.tenant_names(), recommendation.allocations):
        print(f"  {name:<24} cpu={allocation.cpu_share:5.0%}  "
              f"memory={allocation.memory_fraction:5.0%}")
    print()
    print(f"estimated cost under default 50/50 split : {recommendation.default_cost:8.1f} s")
    print(f"estimated cost under recommendation      : {recommendation.total_cost:8.1f} s")
    print(f"estimated improvement                    : {recommendation.estimated_improvement:8.1%}")

    # "Deploy" the recommendation: simulate actually running both workloads
    # inside their VMs (with the noisy-neighbour I/O VM present) and compare
    # against the default allocation.
    actuals = ActualCostFunction(problem)
    measured = advisor.measured_improvement(problem, recommendation.allocations, actuals)
    print(f"measured improvement                     : {measured:8.1%}")


if __name__ == "__main__":
    main()
